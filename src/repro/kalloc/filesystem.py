"""Filesystem buffer allocation model.

Filesystems "frequently allocate pages as buffers for compression and
decompression" (paper §2.5).  These are short-lived but bursty unmovable
allocations: a read/write burst grabs a handful of buffer pages, uses them,
and frees most — while a few (journal heads, in-flight writeback) linger.
"""

from __future__ import annotations

import random

from ..mm.handle import PageHandle
from ..mm.page import AllocSource, MigrateType


class FsBufferPool:
    """Transient filesystem buffers with occasional long-lived stragglers."""

    def __init__(self, kernel, straggler_probability: float = 0.05,
                 rng: random.Random | None = None) -> None:
        self.kernel = kernel
        self.straggler_probability = straggler_probability
        self.rng = rng or random.Random(0)
        self._live: list[PageHandle] = []
        self._stragglers: list[PageHandle] = []

    def io_burst(self, nbuffers: int = 4, order: int = 0) -> None:
        """Model one I/O burst: allocate *nbuffers* buffers, free most of
        them immediately, and let a few become stragglers."""
        burst = [
            self.kernel.alloc_pages(
                order=order,
                source=AllocSource.FILESYSTEM,
                migratetype=MigrateType.UNMOVABLE,
            )
            for _ in range(nbuffers)
        ]
        for handle in burst:
            if self.rng.random() < self.straggler_probability:
                self._stragglers.append(handle)
            else:
                self.kernel.free_pages(handle)

    def retire_stragglers(self, fraction: float = 0.5) -> None:
        """Free a fraction of the oldest stragglers (writeback completed)."""
        n = int(len(self._stragglers) * fraction)
        for handle in self._stragglers[:n]:
            self.kernel.free_pages(handle)
        del self._stragglers[:n]

    def frames_in_use(self) -> int:
        return sum(h.nframes for h in self._stragglers)
