"""Kernel allocation sources.

Models of the subsystems the paper identifies as the producers of unmovable
memory (§2.5, Fig. 6): networking buffers (73 % of unmovable pages at
Meta), the slab allocator (12 %), filesystem buffers, and page tables.
Workloads drive these to generate a realistic unmovable allocation mix on
top of any kernel variant.
"""

from .filesystem import FsBufferPool
from .netbuf import NetworkBufferPool, NetworkQueueConfig
from .pagetable import PageTableAllocator
from .slab import SlabAllocator, SlabCache
from .sources import SOURCE_MIX_META, SourceMix, unmovable_breakdown

__all__ = [
    "FsBufferPool",
    "NetworkBufferPool",
    "NetworkQueueConfig",
    "PageTableAllocator",
    "SOURCE_MIX_META",
    "SlabAllocator",
    "SlabCache",
    "SourceMix",
    "unmovable_breakdown",
]
