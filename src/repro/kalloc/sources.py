"""Unmovable-source taxonomy and measurement (paper Fig. 6).

``SourceMix`` describes target proportions of unmovable memory per source;
``SOURCE_MIX_META`` encodes the fleet-wide breakdown the paper reports
(networking >73 %, slab 12 %, filesystems, page tables, ~4 % other).
``unmovable_breakdown`` measures the realised mix on a simulated machine by
scanning the per-frame source tags — the analogue of the paper's
allocation backtracing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..mm.page import AllocSource
from ..mm.physmem import PhysicalMemory


@dataclass(frozen=True)
class SourceMix:
    """Target fractions of unmovable memory per source (sum to 1)."""

    networking: float
    slab: float
    filesystem: float
    pagetable: float
    other: float

    def __post_init__(self) -> None:
        total = (self.networking + self.slab + self.filesystem
                 + self.pagetable + self.other)
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(f"source mix sums to {total}, not 1.0")

    def fraction_of(self, source: AllocSource) -> float:
        return {
            AllocSource.NETWORKING: self.networking,
            AllocSource.SLAB: self.slab,
            AllocSource.FILESYSTEM: self.filesystem,
            AllocSource.PAGETABLE: self.pagetable,
        }.get(source, self.other)


#: The fleet-wide unmovable source mix measured in the paper (Fig. 6).
SOURCE_MIX_META = SourceMix(
    networking=0.73,
    slab=0.12,
    filesystem=0.07,
    pagetable=0.04,
    other=0.04,
)


def unmovable_breakdown(mem: PhysicalMemory) -> dict[AllocSource, int]:
    """Count unmovable frames per allocation source.

    Returns a dict mapping each source to its unmovable frame count
    (USER appears only for pinned user pages).
    """
    unmovable = mem.unmovable_mask()
    out: dict[AllocSource, int] = {}
    for source in AllocSource:
        mask = unmovable & (mem.source == int(source))
        count = int(np.count_nonzero(mask))
        if count:
            out[source] = count
    return out


def unmovable_fractions(mem: PhysicalMemory) -> dict[AllocSource, float]:
    """Per-source fractions of total unmovable frames (sums to 1)."""
    counts = unmovable_breakdown(mem)
    total = sum(counts.values())
    if not total:
        return {}
    return {src: n / total for src, n in counts.items()}
