"""Page-table page allocation model.

Page tables store virtual→physical translations and are themselves
unmovable kernel pages (paper §2.5).  Their count tracks the mapped
address-space size: one 4 KiB leaf table (PTE level) covers 2 MiB of
mappings, one PMD table covers 1 GiB, and so on up the radix tree.  A
workload that maps its footprint with 4 KiB pages therefore allocates
~512x more leaf tables than one backed by 2 MiB pages — huge pages shrink
this unmovable source too.
"""

from __future__ import annotations

from ..mm.handle import PageHandle
from ..mm.page import AllocSource, MigrateType
from ..telemetry import tracepoint
from ..units import PAGEBLOCK_FRAMES

_tp_table = tracepoint("kalloc.pagetable.alloc")

#: Translation entries per 4 KiB table (x86-64: 512 8-byte entries).
ENTRIES_PER_TABLE = 512


class PageTableAllocator:
    """Allocates page-table pages proportional to mapped memory.

    ``on_map(nframes, leaf_level)`` is called by workloads as they fault
    memory in; the allocator lazily grows the table tree.  ``leaf_level``
    is 0 for 4 KiB mappings (PTE leaves needed) and 1 for 2 MiB mappings
    (leaf entries live in the PMD, skipping one level).
    """

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self._tables: list[PageHandle] = []
        self._mapped_frames = 0

    @property
    def nr_tables(self) -> int:
        return len(self._tables)

    def on_map(self, nframes: int, leaf_level: int = 0) -> None:
        """Account for *nframes* newly mapped frames and allocate any
        page-table pages the mapping tree now needs."""
        self._mapped_frames += nframes
        while self.nr_tables < self._tables_needed(leaf_level):
            self._tables.append(self.kernel.alloc_pages(
                order=0,
                source=AllocSource.PAGETABLE,
                migratetype=MigrateType.UNMOVABLE,
            ))
            if _tp_table.enabled:
                _tp_table.emit(pfn=self._tables[-1].pfn,
                               tables=self.nr_tables,
                               mapped_frames=self._mapped_frames)

    def on_unmap(self, nframes: int, leaf_level: int = 0) -> None:
        """Account for unmapping; empty tables are freed."""
        self._mapped_frames = max(0, self._mapped_frames - nframes)
        while self.nr_tables > self._tables_needed(leaf_level):
            self.kernel.free_pages(self._tables.pop())

    def _tables_needed(self, leaf_level: int) -> int:
        """Tables in a radix tree covering the current mapped footprint."""
        # Leaf tables: one per 512 mappings at the leaf granularity.
        mappings = self._mapped_frames
        if leaf_level == 1:
            mappings = -(-mappings // PAGEBLOCK_FRAMES)  # 2 MiB entries
        total = 0
        level_entries = mappings
        while level_entries > 0:
            tables = -(-level_entries // ENTRIES_PER_TABLE)
            total += tables
            level_entries = tables if tables > 1 else 0
        return max(total, 1) if self._mapped_frames else 0

    def frames_in_use(self) -> int:
        return self.nr_tables
