"""Versioned, checksummed, atomically-rotated checkpoint files.

The on-disk envelope (``RPCK``) is deliberately dumb so every failure
mode maps to one typed error:

.. code-block:: text

    offset  size  field
    0       4     magic  b"RPCK"
    4       4     format version, big-endian uint32
    8       4     header length, big-endian uint32
    12      H     header, UTF-8 JSON: {"kind", "step", "meta",
                  "payload_sha256", "payload_len"}
    12+H    N     payload, pickle protocol >= 4

A bit flip anywhere in the payload breaks the SHA-256 digest; a
truncated file breaks the recorded length before the digest is even
computed; an unknown format version is :class:`CheckpointVersionError`
(a :class:`CheckpointCorruptError` subclass, so generic corruption
handling catches it too).  The header is plain JSON so
``repro checkpoint inspect`` can describe a file without unpickling —
and therefore without importing or trusting the payload.

:class:`CheckpointStore` keeps two generations per name and rotates
them with ``os.replace`` only — the write path never leaves a window
where zero valid checkpoints exist: the new envelope is staged to a
temp file and fsynced first, then ``current`` becomes ``.prev``, then
the temp file becomes ``current``.  A crash (or the injected
``checkpoint.write-fail`` site, which fires before the first rename)
leaves both previous generations intact.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any

from ..errors import (
    CheckpointCorruptError,
    CheckpointVersionError,
    CheckpointWriteError,
)
from ..faults import fault_site
from ..telemetry import MetricsRegistry, tracepoint

MAGIC = b"RPCK"
FORMAT_VERSION = 1

#: magic + version + header length: the minimum parseable file.
_PREFIX_LEN = 12

metrics = MetricsRegistry()

_tp_write = tracepoint("checkpoint.write")
_tp_restore = tracepoint("checkpoint.restore")

_fs_write_fail = fault_site("checkpoint.write-fail")


@dataclass(frozen=True)
class Checkpoint:
    """One decoded checkpoint: the envelope header plus the live payload."""

    kind: str
    step: int
    payload: Any
    meta: dict = field(default_factory=dict)
    path: str = ""

    def describe(self) -> dict:
        """Header-only dict (no payload), for ``inspect`` output."""
        return {"kind": self.kind, "step": self.step,
                "meta": dict(self.meta), "path": self.path}


def encode_checkpoint(kind: str, step: int, payload: Any,
                      meta: dict | None = None) -> bytes:
    """Serialise one envelope to bytes (no I/O)."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps({
        "kind": kind,
        "step": int(step),
        "meta": meta or {},
        "payload_sha256": hashlib.sha256(blob).hexdigest(),
        "payload_len": len(blob),
    }, sort_keys=True).encode("utf-8")
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(FORMAT_VERSION.to_bytes(4, "big"))
    out.write(len(header).to_bytes(4, "big"))
    out.write(header)
    out.write(blob)
    return out.getvalue()


def _parse_header(data: bytes, path: str) -> tuple[dict, int]:
    """Validate the envelope prefix; return (header dict, payload offset).

    Everything before the payload digest check lives here so
    :func:`inspect_checkpoint` can classify a file without unpickling.
    """
    if len(data) < _PREFIX_LEN:
        raise CheckpointCorruptError(
            f"{path}: truncated envelope ({len(data)} bytes, "
            f"need >= {_PREFIX_LEN})")
    if data[:4] != MAGIC:
        raise CheckpointCorruptError(
            f"{path}: bad magic {data[:4]!r} (want {MAGIC!r})")
    version = int.from_bytes(data[4:8], "big")
    if version != FORMAT_VERSION:
        raise CheckpointVersionError(
            f"{path}: format version {version} (this build reads "
            f"{FORMAT_VERSION})")
    header_len = int.from_bytes(data[8:12], "big")
    end = _PREFIX_LEN + header_len
    if len(data) < end:
        raise CheckpointCorruptError(
            f"{path}: truncated header ({len(data)} bytes, "
            f"header ends at {end})")
    try:
        header = json.loads(data[_PREFIX_LEN:end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(f"{path}: unparseable header: {exc}")
    for key in ("kind", "step", "payload_sha256", "payload_len"):
        if key not in header:
            raise CheckpointCorruptError(
                f"{path}: header missing {key!r}")
    return header, end


def read_checkpoint(path: str | os.PathLike) -> Checkpoint:
    """Read and fully validate one checkpoint file.

    Raises:
        FileNotFoundError: no file at *path*.
        CheckpointVersionError: envelope version skew.
        CheckpointCorruptError: bad magic, truncation, checksum or
            pickle failure.
    """
    path = str(path)
    with open(path, "rb") as fh:
        data = fh.read()
    header, offset = _parse_header(data, path)
    blob = data[offset:]
    if len(blob) != header["payload_len"]:
        raise CheckpointCorruptError(
            f"{path}: payload length {len(blob)} != recorded "
            f"{header['payload_len']}")
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header["payload_sha256"]:
        raise CheckpointCorruptError(
            f"{path}: payload checksum mismatch ({digest[:12]}... != "
            f"recorded {header['payload_sha256'][:12]}...)")
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointCorruptError(f"{path}: payload unpickle failed: {exc}")
    return Checkpoint(kind=header["kind"], step=int(header["step"]),
                      payload=payload, meta=dict(header.get("meta", {})),
                      path=path)


def inspect_checkpoint(path: str | os.PathLike) -> dict:
    """Header-level description of one file, never unpickling.

    Returns a dict with ``status`` ``"ok"`` (header parses and the
    payload digest matches), ``"corrupt"``, ``"version-skew"`` or
    ``"missing"``; validation detail rides in ``error``.
    """
    path = str(path)
    info: dict = {"path": path}
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        info["status"] = "missing"
        return info
    info["size"] = len(data)
    info["mtime"] = os.stat(path).st_mtime
    try:
        header, offset = _parse_header(data, path)
    except CheckpointVersionError as exc:
        info.update(status="version-skew", error=str(exc))
        return info
    except CheckpointCorruptError as exc:
        info.update(status="corrupt", error=str(exc))
        return info
    info.update(kind=header["kind"], step=header["step"],
                meta=header.get("meta", {}))
    blob = data[offset:]
    if (len(blob) != header["payload_len"]
            or hashlib.sha256(blob).hexdigest() != header["payload_sha256"]):
        info.update(status="corrupt",
                    error=f"{path}: payload fails length/checksum check")
        return info
    info["status"] = "ok"
    return info


class CheckpointStore:
    """Two-generation rotating checkpoint writer/reader for one run.

    Files live at ``<directory>/<name>.ckpt`` (current) and
    ``<directory>/<name>.ckpt.prev`` (previous good).  ``save`` rotates
    with ``os.replace`` so a crash at any instruction boundary leaves at
    least one fully-valid generation on disk; ``load_latest`` prefers
    current and falls back to previous when current fails validation.
    """

    SUFFIX = ".ckpt"
    PREV_SUFFIX = ".ckpt.prev"

    def __init__(self, directory: str | os.PathLike,
                 name: str = "run") -> None:
        self.directory = str(directory)
        self.name = name
        os.makedirs(self.directory, exist_ok=True)

    @property
    def current_path(self) -> str:
        return os.path.join(self.directory, self.name + self.SUFFIX)

    @property
    def previous_path(self) -> str:
        return os.path.join(self.directory, self.name + self.PREV_SUFFIX)

    def save(self, kind: str, step: int, payload: Any,
             meta: dict | None = None) -> str:
        """Write one checkpoint generation atomically; returns its path.

        Raises:
            CheckpointWriteError: the staged write failed (or the
                ``checkpoint.write-fail`` site fired) before any rename;
                both existing generations are untouched.
        """
        data = encode_checkpoint(kind, step, payload, meta=meta)
        fd, tmp = tempfile.mkstemp(dir=self.directory,
                                   prefix=".tmp-" + self.name,
                                   suffix=self.SUFFIX)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            if _fs_write_fail.armed and _fs_write_fail.fire(
                    kind=kind, step=step):
                raise CheckpointWriteError(
                    f"{self.current_path}: injected checkpoint.write-fail "
                    f"at step {step}")
            if os.path.exists(self.current_path):
                os.replace(self.current_path, self.previous_path)
            os.replace(tmp, self.current_path)
        except BaseException:
            metrics.inc("checkpoint.write_failures")
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        metrics.inc("checkpoint.writes")
        if _tp_write.enabled:
            _tp_write.emit(kind=kind, step=step, bytes=len(data),
                           path=self.current_path)
        return self.current_path

    def load_latest(self) -> Checkpoint | None:
        """The newest fully-valid checkpoint, or None when none exists.

        A corrupt (or version-skewed) current generation falls back to
        the previous one, counting ``checkpoint.fallbacks``.  When both
        generations fail validation the *current* generation's error
        propagates — silent resumption from garbage is worse than a
        loud failure.
        """
        primary_error: CheckpointCorruptError | None = None
        for path in (self.current_path, self.previous_path):
            try:
                ckpt = read_checkpoint(path)
            except FileNotFoundError:
                continue
            except CheckpointCorruptError as exc:
                if primary_error is None:
                    primary_error = exc
                continue
            if primary_error is not None:
                metrics.inc("checkpoint.fallbacks")
            metrics.inc("checkpoint.restores")
            if _tp_restore.enabled:
                _tp_restore.emit(kind=ckpt.kind, step=ckpt.step,
                                 path=ckpt.path)
            return ckpt
        if primary_error is not None:
            raise primary_error
        return None

    def inspect(self) -> dict:
        """Header-level description of both generations (no unpickle)."""
        return {
            "directory": self.directory,
            "name": self.name,
            "generations": [inspect_checkpoint(self.current_path),
                            inspect_checkpoint(self.previous_path)],
        }
