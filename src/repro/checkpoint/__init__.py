"""Durable checkpoint/restore for long-horizon runs.

Long churn loops, the open-loop load generator, sharded fleet surveys
and experiment cells all checkpoint through the same primitive: a
versioned, SHA-256-checksummed ``RPCK`` envelope written with the
atomic tempfile + ``os.replace`` idiom and rotated across two
generations, so a SIGKILL at any point leaves at least one fully-valid
checkpoint and a resumed run produces manifests byte-identical to an
uninterrupted one.  See ``docs/ROBUSTNESS.md`` for the format, the
guarantees and the failure matrix.
"""

from .format import (
    FORMAT_VERSION,
    MAGIC,
    Checkpoint,
    CheckpointStore,
    encode_checkpoint,
    inspect_checkpoint,
    read_checkpoint,
)
from .runstate import (
    maybe_crash,
    reattach_kernel,
    restore_kernel,
    verify_restored,
)
from .watchdog import DEFAULT_DEADLINE_S, DeadlineWatchdog

__all__ = [
    "DEFAULT_DEADLINE_S",
    "FORMAT_VERSION",
    "MAGIC",
    "Checkpoint",
    "CheckpointStore",
    "DeadlineWatchdog",
    "encode_checkpoint",
    "inspect_checkpoint",
    "maybe_crash",
    "read_checkpoint",
    "reattach_kernel",
    "restore_kernel",
    "verify_restored",
]
