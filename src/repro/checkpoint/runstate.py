"""Restoring simulator state safely, and crashing it on purpose.

A checkpoint payload is a pickled object graph (kernel, workload,
recorders, RNG streams).  Pickle restores the *data* faithfully — the
SoA columns, the freelist links, every ``random.Random`` state — but
two things need explicit help after ``pickle.loads``:

* the tracepoint registry holds the simulated clock through a weakref
  that is never pickled, so the restored kernel must be re-registered
  with :func:`repro.telemetry.set_sim_clock`;
* trust: a checkpoint that passed the envelope checksum can still have
  been written by a buggy (or memory-corrupted) producer, so restore
  reruns the PR 3 sanitizer sweep — the freelist link-walk plus the
  whole-kernel accounting audit — before the run continues.

:func:`maybe_crash` is the other half of the crash-recovery harness:
wired at checkpoint boundaries, it lets the ``sim.crash`` fault site
kill a run with :class:`SimCrashError` exactly where a SIGKILL would
land, so tests and CI can assert bit-identical recovery.
"""

from __future__ import annotations

from ..errors import SimCrashError
from ..faults import fault_site
from ..telemetry import set_sim_clock

_fs_crash = fault_site("sim.crash")


def reattach_kernel(kernel) -> None:
    """Re-register a freshly unpickled kernel as the simulated clock.

    ``LinuxKernel.__init__`` does this for new kernels; unpickling
    bypasses ``__init__``-side effects on process-global registries.
    """
    set_sim_clock(kernel)


def verify_restored(kernel) -> None:
    """Sanitize a restored kernel before the run continues.

    Runs ``FreelistStore.check_invariants`` (every list's link sweep)
    and ``kernel.check_consistency()`` (``verify_kernel``: occupancy
    bitmaps, per-migratetype accounting, global free counts).

    Raises:
        SimInvariantError: the checkpoint decoded cleanly but encodes a
            state the simulator itself considers impossible.
    """
    kernel.mem.freelists.check_invariants()
    kernel.check_consistency()


def restore_kernel(kernel) -> None:
    """Full post-unpickle sequence: reattach the clock, then sanitize."""
    reattach_kernel(kernel)
    verify_restored(kernel)


def maybe_crash(step: int, kind: str = "run") -> None:
    """Give the ``sim.crash`` fault site one shot at killing the run.

    Called at checkpoint boundaries (right after a checkpoint write
    attempt).  Raises :class:`SimCrashError` when the site fires; a
    no-op otherwise, including when no plan is installed.
    """
    if _fs_crash.armed and _fs_crash.fire(step=step, kind=kind):
        raise SimCrashError(
            f"injected sim.crash at {kind} checkpoint boundary, "
            f"step {step}")
