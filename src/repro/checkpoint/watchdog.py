"""Deadline watchdog: a run that stops checkpointing is hung.

The watchdog is deliberately outside the simulated-time discipline
(``checkpoint/`` is not a sim-time subsystem): a hung run, by
definition, stops advancing simulated time, so the only usable signal
is wall-clock staleness of its checkpoint file.  The clock is
injectable so tests never sleep.
"""

from __future__ import annotations

import os
import time
from typing import Callable

#: Default staleness threshold before a run is declared hung.
DEFAULT_DEADLINE_S = 600.0


class DeadlineWatchdog:
    """Judge one checkpoint file's freshness against a deadline.

    Args:
        path: the checkpoint file a live run keeps rewriting.
        deadline_s: maximum tolerated age in seconds.
        clock: wall-clock source, injectable for tests.
    """

    def __init__(self, path: str | os.PathLike,
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 clock: Callable[[], float] = time.time) -> None:
        self.path = str(path)
        self.deadline_s = float(deadline_s)
        self._clock = clock

    def age_s(self) -> float | None:
        """Seconds since the file was last rewritten; None if missing."""
        try:
            mtime = os.stat(self.path).st_mtime
        except FileNotFoundError:
            return None
        return max(0.0, self._clock() - mtime)

    def status(self) -> str:
        """``"ok"``, ``"hung"`` (stale beyond deadline) or ``"missing"``."""
        age = self.age_s()
        if age is None:
            return "missing"
        return "hung" if age > self.deadline_s else "ok"

    def describe(self) -> dict:
        """Status dict for ``repro checkpoint inspect``."""
        return {"path": self.path, "deadline_s": self.deadline_s,
                "age_s": self.age_s(), "status": self.status()}
