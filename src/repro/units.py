"""Size and time units used throughout the simulator.

All physical memory quantities in this package are expressed either in bytes
or in *frames* (4 KiB base pages).  These helpers keep conversions explicit
and readable at call sites: ``MiB(64)`` reads better than ``64 * 1048576``.
"""

from __future__ import annotations

#: Base page (frame) size in bytes, matching x86-64 Linux.
FRAME_SIZE = 4096

#: log2 of the number of base pages in a 2 MiB huge page / pageblock.
PAGEBLOCK_ORDER = 9

#: Number of base pages in a 2 MiB pageblock.
PAGEBLOCK_FRAMES = 1 << PAGEBLOCK_ORDER

#: Largest buddy order.  We cap buddy blocks at one pageblock (2 MiB) so a
#: free block never straddles a pageblock boundary; this keeps pageblock
#: stealing and Contiguitas region-boundary moves exact.  (Linux allows
#: 4 MiB blocks; nothing in the paper's evaluation depends on them, and
#: >2 MiB contiguity is obtained via ``alloc_contig_range`` as in Linux.)
MAX_ORDER = PAGEBLOCK_ORDER

#: Number of base pages in a 1 GiB huge page.
GIGAPAGE_FRAMES = (1 << 30) // FRAME_SIZE

#: Cache line size in bytes.
CACHE_LINE = 64

#: Cache lines per 4 KiB page.
LINES_PER_PAGE = FRAME_SIZE // CACHE_LINE


def KiB(n: float) -> int:
    """Return *n* kibibytes in bytes."""
    return int(n * 1024)


def MiB(n: float) -> int:
    """Return *n* mebibytes in bytes."""
    return int(n * 1024 * 1024)


def GiB(n: float) -> int:
    """Return *n* gibibytes in bytes."""
    return int(n * 1024 * 1024 * 1024)


def bytes_to_frames(nbytes: int) -> int:
    """Convert a byte count to whole 4 KiB frames (must divide evenly)."""
    if nbytes % FRAME_SIZE:
        raise ValueError(f"{nbytes} bytes is not a multiple of {FRAME_SIZE}")
    return nbytes // FRAME_SIZE


def frames_to_bytes(nframes: int) -> int:
    """Convert a frame count to bytes."""
    return nframes * FRAME_SIZE


def order_of(nframes: int) -> int:
    """Return the buddy order whose block size is exactly *nframes* frames."""
    order = nframes.bit_length() - 1
    if nframes <= 0 or (1 << order) != nframes:
        raise ValueError(f"{nframes} is not a power-of-two frame count")
    return order


def human_size(nbytes: float) -> str:
    """Render a byte count using binary units, e.g. ``human_size(2<<20)``
    returns ``'2.0MiB'``."""
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(nbytes) < 1024 or unit == "TiB":
            return f"{nbytes:.1f}{unit}" if unit != "B" else f"{int(nbytes)}B"
        nbytes /= 1024
    raise AssertionError("unreachable")
