"""Exception hierarchy for the Contiguitas reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class OutOfMemoryError(ReproError):
    """No free block of the requested order exists in any permitted list.

    The simulated kernel raises this only after reclaim and (where allowed)
    compaction have failed, mirroring a real allocation failure.
    """


class ContiguityError(ReproError):
    """A request for physically contiguous memory could not be satisfied
    (e.g. a HugeTLB 1 GiB reservation on a fragmented machine)."""


class MigrationError(ReproError):
    """A page could not be migrated (pinned, unmovable, or busy)."""


class ConfigurationError(ReproError):
    """Invalid simulator or kernel configuration."""


class WorkerCrashError(ReproError):
    """A fleet worker process died mid-scan (injected by the
    ``fleet.worker.crash`` fault site or a genuine crash); the supervised
    executor catches it, requeues the payload, and retries."""


class HardwareProtocolError(ReproError):
    """Contiguitas-HW protocol violation (e.g. migrating a page that is
    already under migration, or clearing an entry that does not exist)."""


class SimInvariantError(ReproError):
    """A simulator invariant was violated — the analogue of a kernel
    ``BUG_ON``.

    Raised instead of a bare ``assert`` so that invariants keep firing
    under ``python -O`` (which strips assert statements).  The runtime
    sanitizer (:mod:`repro.analysis.sanitizer`) raises the
    :class:`SanitizerError` subclasses with frame-level detail.
    """


class SanitizerError(SimInvariantError):
    """Base class for frame-state violations detected by the runtime
    sanitizer (the CONFIG_DEBUG_VM analogue).

    Attributes:
        pfn: the offending frame number, or None for aggregate checks.
        history: recent ``(action, order, tick)`` events recorded for the
            frame when a :class:`~repro.analysis.sanitizer.FrameSanitizer`
            is attached; empty otherwise.
    """

    def __init__(self, message: str, pfn: int | None = None,
                 history: tuple = ()) -> None:
        if pfn is not None:
            message = f"{message} (pfn {pfn})"
        if history:
            trail = " -> ".join(
                f"{action}@{tick}:o{order}" for action, order, tick in history)
            message = f"{message} [history: {trail}]"
        super().__init__(message)
        self.pfn = pfn
        self.history = tuple(history)


class DoubleAllocError(SanitizerError):
    """A frame that is already part of a live allocation was allocated
    again (or a duplicate head PFN was registered)."""


class DoubleFreeError(SanitizerError):
    """An allocation was freed twice."""


class FreeOfUnallocatedError(SanitizerError):
    """A free targeted a frame that is not a live allocation head."""


class MigratetypeDriftError(SanitizerError):
    """Per-migratetype free accounting diverged from the frame arrays
    (a free block sits on one type's list while the frame metadata or
    counters say another)."""


class FreelistDivergenceError(SanitizerError):
    """Buddy free-list bookkeeping diverged from the frame arrays or the
    occupancy bitmaps (missing list entry, stale order, bad nr_free)."""


class CheckpointError(ReproError):
    """Base class for checkpoint/restore failures
    (:mod:`repro.checkpoint`)."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file failed validation on read: bad magic, truncated
    payload, or a checksum mismatch.  Recovery falls back to the
    previous good checkpoint generation when one exists."""


class CheckpointVersionError(CheckpointCorruptError):
    """A checkpoint file carries an envelope version this build does not
    understand (version skew between writer and reader)."""


class CheckpointWriteError(CheckpointError):
    """A checkpoint write failed before the atomic rename (disk error or
    the injected ``checkpoint.write-fail`` site); every previously
    written generation is left intact."""


class SimCrashError(ReproError):
    """The injected ``sim.crash`` fault site killed the run at a
    checkpoint boundary — the crash-recovery harness's stand-in for a
    SIGKILL.  Resuming from the last checkpoint must reproduce the
    uninterrupted run bit-for-bit."""
