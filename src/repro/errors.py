"""Exception hierarchy for the Contiguitas reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class OutOfMemoryError(ReproError):
    """No free block of the requested order exists in any permitted list.

    The simulated kernel raises this only after reclaim and (where allowed)
    compaction have failed, mirroring a real allocation failure.
    """


class ContiguityError(ReproError):
    """A request for physically contiguous memory could not be satisfied
    (e.g. a HugeTLB 1 GiB reservation on a fragmented machine)."""


class MigrationError(ReproError):
    """A page could not be migrated (pinned, unmovable, or busy)."""


class ConfigurationError(ReproError):
    """Invalid simulator or kernel configuration."""


class HardwareProtocolError(ReproError):
    """Contiguitas-HW protocol violation (e.g. migrating a page that is
    already under migration, or clearing an entry that does not exist)."""
