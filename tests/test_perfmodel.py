"""Performance models: Fig. 2 trends, Fig. 3 walk cycles, Fig. 10 RPS."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel import (
    GENERATIONS,
    MIX_1G,
    MIX_2M,
    MIX_4K,
    PageSizeMix,
    evaluate_configuration,
    generation_trends,
    mix_for_coverage,
    perf_ratio,
    walk_cycles,
)
from repro.perfmodel.walkcycles import WalkCycleResult
from repro.sim.tlb import SHIFT_1G, SHIFT_2M, SHIFT_4K
from repro.workloads.services import CACHE_B, WEB

N = 60_000  # instructions per model run (kept small for test speed)


class TestHwGen:
    def test_capacity_grows_8x(self):
        rows = generation_trends()
        assert rows[0]["relative_capacity"] == 1.0
        assert rows[-1]["relative_capacity"] == pytest.approx(8.0)

    def test_4k_coverage_collapses(self):
        rows = generation_trends()
        assert rows[-1]["coverage_4k"] < rows[0]["coverage_4k"]
        assert rows[-1]["coverage_4k"] < 0.001

    def test_1g_covers_even_gen5(self):
        """Fig. 2: only 1 GiB pages provide coverage larger than Gen-5
        memory capacity."""
        rows = generation_trends()
        assert rows[-1]["coverage_1g"] == 1.0
        assert rows[-1]["coverage_2m"] < 0.01

    def test_tlb_entries_stay_flat(self):
        entries = [g.tlb_entries for g in GENERATIONS]
        assert max(entries) / min(entries) < 1.5


class TestPageSizeMix:
    def test_shift_selection(self):
        mix = PageSizeMix(frac_1g=0.25, frac_2m=0.25)
        fp = 1000
        assert mix.shift_for(0, fp) == SHIFT_1G
        assert mix.shift_for(300, fp) == SHIFT_2M
        assert mix.shift_for(900, fp) == SHIFT_4K

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PageSizeMix(frac_1g=0.8, frac_2m=0.8)

    def test_mix_from_coverage(self):
        mix = mix_for_coverage({"1g": 0.3, "2m": 0.5, "4k": 0.2})
        assert mix.frac_1g == 0.3
        assert mix.frac_2m == 0.5


class TestWalkCycles:
    def test_huge_pages_reduce_walk_share(self):
        r4k = walk_cycles(CACHE_B, MIX_4K, n_instructions=N)
        r2m = walk_cycles(CACHE_B, MIX_2M, n_instructions=N)
        r1g = walk_cycles(CACHE_B, MIX_1G, n_instructions=N)
        assert r4k.data_pct > r2m.data_pct > r1g.data_pct

    def test_web_1g_gain_exceeds_2m_gain(self):
        """The paper's §2.3 observation: for Web data, 2 MiB offers less
        improvement than 1 GiB pages."""
        r4k = walk_cycles(WEB, MIX_4K, n_instructions=N)
        r2m = walk_cycles(WEB, MIX_2M, n_instructions=N)
        r1g = walk_cycles(WEB, MIX_1G, n_instructions=N)
        gain_2m = r4k.data_pct - r2m.data_pct
        gain_1g = r4k.data_pct - r1g.data_pct
        assert gain_1g > gain_2m

    def test_2m_helps_instructions(self):
        r4k = walk_cycles(WEB, MIX_4K, n_instructions=N)
        r2m = walk_cycles(WEB, MIX_2M, n_instructions=N)
        assert r2m.instr_pct < r4k.instr_pct

    def test_magnitudes_match_production_band(self):
        """§2.3: page-walk cycles can approach 20 % of total cycles."""
        r4k = walk_cycles(WEB, MIX_4K, n_instructions=N)
        assert 5.0 < r4k.total_pct < 35.0

    def test_deterministic(self):
        a = walk_cycles(CACHE_B, MIX_4K, n_instructions=N, seed=5)
        b = walk_cycles(CACHE_B, MIX_4K, n_instructions=N, seed=5)
        assert a.data_pct == b.data_pct

    def test_partial_mix_between_extremes(self):
        r4k = walk_cycles(CACHE_B, MIX_4K, n_instructions=N)
        rhalf = walk_cycles(CACHE_B, PageSizeMix(frac_2m=0.5),
                            n_instructions=N)
        r2m = walk_cycles(CACHE_B, MIX_2M, n_instructions=N)
        assert r2m.data_pct <= rhalf.data_pct <= r4k.data_pct


class TestEndToEnd:
    def test_perf_ratio_direction(self):
        base = WalkCycleResult(data_pct=15.0, instr_pct=5.0)
        better = WalkCycleResult(data_pct=8.0, instr_pct=2.0)
        assert perf_ratio(base, better) > 1.0
        assert perf_ratio(better, base) < 1.0
        assert perf_ratio(base, base) == 1.0

    def test_full_coverage_beats_baseline(self):
        result = evaluate_configuration(
            CACHE_B, {"1g": 0.0, "2m": 1.0, "4k": 0.0}, "thp",
            n_instructions=N)
        assert result.relative_perf > 1.0
        assert result.perf_from_1g == 0.0

    def test_web_1g_contribution_reported(self):
        result = evaluate_configuration(
            WEB, {"1g": 0.3, "2m": 0.6, "4k": 0.1}, "contiguitas",
            n_instructions=N)
        assert result.relative_perf > 1.0
        assert result.perf_from_1g > 0.0
        assert result.perf_from_1g < result.relative_perf - 0.0

    def test_gains_in_paper_band(self):
        """Fig. 10: end-to-end wins land in the 2-18 % band."""
        result = evaluate_configuration(
            CACHE_B, {"1g": 0.0, "2m": 1.0, "4k": 0.0}, "contiguitas",
            n_instructions=N)
        assert 1.01 < result.relative_perf < 1.30


class TestAddrspaceIntegration:
    def test_fragmented_kernel_pays_more_walk_cycles(self):
        """End-to-end: the same process on a fragmented Linux kernel vs a
        post-fragmentation Contiguitas kernel — coverage comes from real
        kernel state and translates into walk cycles."""
        from conftest import make_contiguitas, make_linux
        from repro.perfmodel import walk_cycles_from_addrspace
        from repro.vm import AddressSpace, EXTENT_BYTES
        from repro.workloads import fragment_fully
        from repro.workloads.services import CACHE_B

        results = {}
        for name, kernel in (
            ("linux", make_linux(mem_mib=64, compaction_enabled=False)),
            ("contiguitas", make_contiguitas(mem_mib=64)),
        ):
            fragment_fully(kernel)
            aspace = AddressSpace(kernel)
            vma = aspace.mmap(8 * EXTENT_BYTES)
            for off in range(0, vma.length, 4096):
                aspace.fault(vma.start + off)
            results[name] = walk_cycles_from_addrspace(
                aspace, CACHE_B, n_instructions=N)
        assert results["contiguitas"].data_pct < results["linux"].data_pct

    def test_empty_addrspace_rejected(self):
        from repro.errors import ConfigurationError
        from repro.perfmodel import walk_cycles_from_addrspace
        from repro.vm import AddressSpace
        from repro.workloads.services import CACHE_B
        from conftest import make_linux

        with pytest.raises(ConfigurationError):
            walk_cycles_from_addrspace(AddressSpace(make_linux()), CACHE_B)
