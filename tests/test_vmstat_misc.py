"""VmStat counters and small odds and ends."""

import pytest

from repro.errors import (
    ConfigurationError,
    ContiguityError,
    HardwareProtocolError,
    MigrationError,
    OutOfMemoryError,
    ReproError,
)
from repro.mm import VmStat
from repro.mm import vmstat as ev


class TestVmStat:
    def test_inc_and_get(self):
        stat = VmStat()
        stat.inc("x")
        stat.inc("x", 4)
        assert stat["x"] == 5
        assert stat["missing"] == 0

    def test_contains_and_iter(self):
        stat = VmStat()
        stat.inc("a")
        assert "a" in stat
        assert "b" not in stat
        assert list(stat) == ["a"]

    def test_items_sorted(self):
        stat = VmStat()
        stat.inc("zeta")
        stat.inc("alpha")
        assert [k for k, _ in stat.items()] == ["alpha", "zeta"]

    def test_snapshot_delta(self):
        stat = VmStat()
        stat.inc("a", 2)
        snap = stat.snapshot()
        stat.inc("a")
        stat.inc("b", 3)
        delta = stat.delta(snap)
        assert delta == {"a": 1, "b": 3}

    def test_reset(self):
        stat = VmStat()
        stat.inc("a")
        stat.reset()
        assert stat["a"] == 0

    def test_event_constants_are_distinct(self):
        names = [v for k, v in vars(ev).items()
                 if k.isupper() and isinstance(v, str)]
        assert len(names) == len(set(names))


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        OutOfMemoryError, ContiguityError, MigrationError,
        ConfigurationError, HardwareProtocolError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")
