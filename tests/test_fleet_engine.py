"""Parallel fleet engine: worker resolution, fallback, bit-identity."""

import pytest

from repro.fleet import FleetSample, ServerConfig, resolve_workers, run_fleet
from repro.fleet.engine import WORKERS_ENV
from repro.units import MiB

SMALL = ServerConfig(mem_bytes=MiB(64), min_uptime_steps=20,
                     max_uptime_steps=60)


class TestWorkerResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_env_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert resolve_workers(None) == 1

    def test_defaults_to_cpu_count(self, monkeypatch):
        import os
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == max(1, os.cpu_count() or 1)

    def test_never_below_one(self):
        assert resolve_workers(-4) == 1


class TestRunFleet:
    def test_serial_fallback_matches_direct_loop(self):
        from repro.fleet import SimulatedServer

        scans = run_fleet(3, config=SMALL, base_seed=9, workers=1)
        direct = [SimulatedServer(SMALL, seed=9 + i).run()
                  for i in range(3)]
        assert scans == direct

    def test_parallel_bit_identical_to_serial(self):
        """The acceptance property: scans from the process pool equal the
        serial path field-for-field, in index order."""
        serial = run_fleet(4, config=SMALL, base_seed=3, workers=1)
        parallel = run_fleet(4, config=SMALL, base_seed=3, workers=2,
                             chunk_size=1)
        assert parallel == serial

    def test_sample_fleet_workers_param(self):
        from repro.fleet import sample_fleet

        a = sample_fleet(n_servers=2, config=SMALL, base_seed=1, workers=1)
        b = sample_fleet(n_servers=2, config=SMALL, base_seed=1, workers=2)
        assert a.scans == b.scans

    def test_zero_servers(self):
        assert run_fleet(0, config=SMALL, workers=1) == []


class TestEmptyFleetAggregates:
    def test_fraction_without_any_empty(self):
        sample = FleetSample(scans=[])
        assert sample.fraction_without_any("2MB") == 0.0
        assert sample.fraction_without_any("1GB") == 0.0

    def test_source_breakdown_empty(self):
        assert FleetSample(scans=[]).source_breakdown() == {}
