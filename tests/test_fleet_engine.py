"""Supervised fleet engine: worker resolution, retries, bit-identity."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec
from repro.fleet import (
    FleetConfig,
    FleetSample,
    ServerConfig,
    resolve_workers,
    run_fleet,
    run_fleet_scans,
)
from repro.fleet.engine import WORKERS_ENV, WorkerOutcome, _scan_payload
from repro.units import MiB

SMALL = ServerConfig(mem_bytes=MiB(64), min_uptime_steps=20,
                     max_uptime_steps=60)


class TestWorkerResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_env_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert resolve_workers(None) == 1

    def test_defaults_to_cpu_count(self, monkeypatch):
        import os
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == max(1, os.cpu_count() or 1)

    def test_explicit_negative_rejected(self):
        """Explicit and env-var spellings validate identically: a
        negative count is a configuration error either way."""
        with pytest.raises(ConfigurationError):
            resolve_workers(-4)

    def test_env_negative_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "-3")
        with pytest.raises(ConfigurationError):
            resolve_workers(None)

    def test_zero_still_means_serial(self):
        assert resolve_workers(0) == 1


class TestRunFleet:
    def test_serial_fallback_matches_direct_loop(self):
        from repro.fleet import SimulatedServer

        scans = run_fleet_scans(3, config=SMALL, base_seed=9, workers=1)
        direct = [SimulatedServer(SMALL, seed=9 + i).run()
                  for i in range(3)]
        assert scans == direct

    def test_parallel_bit_identical_to_serial(self):
        """The acceptance property: scans from the process pool equal the
        serial path field-for-field, in index order."""
        serial = run_fleet_scans(4, config=SMALL, base_seed=3, workers=1)
        parallel = run_fleet_scans(4, config=SMALL, base_seed=3, workers=2,
                             chunk_size=1)
        assert parallel == serial

    def test_run_fleet_front_door_workers_param(self):
        a = run_fleet(FleetConfig(n_servers=2, server=SMALL,
                                  base_seed=1, workers=1))
        b = run_fleet(FleetConfig(n_servers=2, server=SMALL,
                                  base_seed=1, workers=2))
        assert a.scans == b.scans

    def test_run_fleet_legacy_positional_shim(self):
        """The pre-redesign ``run_fleet(n, ...) -> list`` spelling still
        works, warns once, and returns the engine's raw scan list."""
        from repro.fleet import sampler

        sampler._DEPRECATION_WARNED.discard("run_fleet-legacy")
        with pytest.warns(DeprecationWarning, match="run_fleet_scans"):
            legacy = run_fleet(2, config=SMALL, base_seed=9, workers=1)
        assert legacy == run_fleet_scans(2, config=SMALL, base_seed=9,
                                         workers=1)

    def test_zero_servers(self):
        assert run_fleet_scans(0, config=SMALL, workers=1) == []
        assert run_fleet(FleetConfig(n_servers=0, server=SMALL,
                                     workers=1)).scans == []


CRASH_ONCE = FaultPlan(
    "crash-once", (FaultSpec("fleet.worker.crash", max_fires=1),))
CRASH_ALWAYS = FaultPlan(
    "crash-always", (FaultSpec("fleet.worker.crash"),))


class TestSupervision:
    def test_payload_failure_carries_context(self):
        """Satellite: a worker failure names the server index, seed, and
        attempt without needing the worker's stdout."""
        cfg = dataclasses.replace(SMALL, fault_plan=CRASH_ALWAYS)
        outcome = _scan_payload((5, cfg, 14, 1))
        assert isinstance(outcome, WorkerOutcome)
        assert not outcome.ok
        assert "server 5" in outcome.error
        assert "seed 14" in outcome.error
        assert "attempt 1" in outcome.error
        assert "WorkerCrashError" in outcome.error

    def test_crashed_server_retried_to_identical_scan(self):
        """Retried payloads replay the same seed: a crash-then-retry run
        is bit-identical to a clean run of the same seed."""
        clean = run_fleet_scans(3, config=SMALL, base_seed=7, workers=1)
        cfg = dataclasses.replace(SMALL, fault_plan=CRASH_ONCE)
        for workers in (1, 2):
            chaotic = run_fleet_scans(3, config=cfg, base_seed=7,
                                workers=workers, backoff_base=0.0)
            assert chaotic == clean
            assert not any(s.failed for s in chaotic)

    def test_exhausted_retries_degrade_not_abort(self):
        """Every index comes back even when every attempt crashes; the
        placeholders are marked failed with the final error attached."""
        cfg = dataclasses.replace(SMALL, fault_plan=CRASH_ALWAYS)
        for workers in (1, 2):
            scans = run_fleet_scans(3, config=cfg, base_seed=0, workers=workers,
                              max_retries=1, backoff_base=0.0)
            assert len(scans) == 3
            assert all(s.failed for s in scans)
            assert all("WorkerCrashError" in s.error for s in scans)
            assert "server 2" in scans[2].error

    def test_degraded_sample_aggregates_skip_failures(self):
        cfg = dataclasses.replace(SMALL, fault_plan=CRASH_ALWAYS)
        healthy = run_fleet_scans(2, config=SMALL, base_seed=0, workers=1)
        broken = run_fleet_scans(1, config=cfg, base_seed=50, workers=1,
                           max_retries=0, backoff_base=0.0)
        sample = FleetSample(scans=healthy + broken)
        assert sample.failed_indices() == [2]
        assert len(sample.completed_scans()) == 2
        assert len(sample.series("contiguity", "2MB")) == 2
        snap = sample.snapshot()
        assert snap["n_servers"] == 3
        assert snap["n_failed_servers"] == 1

    def test_chunk_size_still_accepted(self):
        scans = run_fleet_scans(2, config=SMALL, base_seed=1, workers=2,
                          chunk_size=1)
        assert scans == run_fleet_scans(2, config=SMALL, base_seed=1, workers=1)


class TestEmptyFleetAggregates:
    def test_fraction_without_any_empty(self):
        sample = FleetSample(scans=[])
        assert sample.fraction_without_any("2MB") == 0.0
        assert sample.fraction_without_any("1GB") == 0.0

    def test_source_breakdown_empty(self):
        assert FleetSample(scans=[]).source_breakdown() == {}
