"""Supervised fleet engine: worker resolution, retries, bit-identity."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec
from repro.fleet import (
    FleetConfig,
    FleetSample,
    ServerConfig,
    check_survey_fit,
    estimate_survey_bytes,
    iter_fleet_scans,
    resolve_workers,
    run_fleet,
    run_fleet_scans,
    survey_fleet,
)
from repro.fleet.engine import (
    WORKERS_ENV,
    WorkerOutcome,
    _resolve_chunk,
    _scan_payload,
)
from repro.units import MiB

SMALL = ServerConfig(mem_bytes=MiB(64), min_uptime_steps=20,
                     max_uptime_steps=60)

#: Fast variant for the wider fleets (64 servers) in the manifest
#: bit-identity tests.
TINY = ServerConfig(mem_bytes=MiB(64), min_uptime_steps=5,
                    max_uptime_steps=15)


class TestWorkerResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_env_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert resolve_workers(None) == 1

    def test_defaults_to_cpu_count(self, monkeypatch):
        import os
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == max(1, os.cpu_count() or 1)

    def test_explicit_negative_rejected(self):
        """Explicit and env-var spellings validate identically: a
        negative count is a configuration error either way."""
        with pytest.raises(ConfigurationError):
            resolve_workers(-4)

    def test_env_negative_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "-3")
        with pytest.raises(ConfigurationError):
            resolve_workers(None)

    def test_zero_still_means_serial(self):
        assert resolve_workers(0) == 1


class TestRunFleet:
    def test_serial_fallback_matches_direct_loop(self):
        from repro.fleet import SimulatedServer

        scans = run_fleet_scans(3, config=SMALL, base_seed=9, workers=1)
        direct = [SimulatedServer(SMALL, seed=9 + i).run()
                  for i in range(3)]
        assert scans == direct

    def test_parallel_bit_identical_to_serial(self):
        """The acceptance property: scans from the process pool equal the
        serial path field-for-field, in index order."""
        serial = run_fleet_scans(4, config=SMALL, base_seed=3, workers=1)
        parallel = run_fleet_scans(4, config=SMALL, base_seed=3, workers=2,
                             chunk_size=1)
        assert parallel == serial

    def test_run_fleet_front_door_workers_param(self):
        a = run_fleet(FleetConfig(n_servers=2, server=SMALL,
                                  base_seed=1, workers=1))
        b = run_fleet(FleetConfig(n_servers=2, server=SMALL,
                                  base_seed=1, workers=2))
        assert a.scans == b.scans

    def test_run_fleet_legacy_positional_shim(self):
        """The pre-redesign ``run_fleet(n, ...) -> list`` spelling still
        works, warns once, and returns the engine's raw scan list."""
        from repro.fleet import sampler

        sampler._DEPRECATION_WARNED.discard("run_fleet-legacy")
        with pytest.warns(DeprecationWarning, match="run_fleet_scans"):
            legacy = run_fleet(2, config=SMALL, base_seed=9, workers=1)
        assert legacy == run_fleet_scans(2, config=SMALL, base_seed=9,
                                         workers=1)

    def test_zero_servers(self):
        assert run_fleet_scans(0, config=SMALL, workers=1) == []
        assert run_fleet(FleetConfig(n_servers=0, server=SMALL,
                                     workers=1)).scans == []


CRASH_ONCE = FaultPlan(
    "crash-once", (FaultSpec("fleet.worker.crash", max_fires=1),))
CRASH_ALWAYS = FaultPlan(
    "crash-always", (FaultSpec("fleet.worker.crash"),))


class TestSupervision:
    def test_payload_failure_carries_context(self):
        """Satellite: a worker failure names the server index, seed, and
        attempt without needing the worker's stdout."""
        cfg = dataclasses.replace(SMALL, fault_plan=CRASH_ALWAYS)
        outcome = _scan_payload((5, cfg, 14, 1))
        assert isinstance(outcome, WorkerOutcome)
        assert not outcome.ok
        assert "server 5" in outcome.error
        assert "seed 14" in outcome.error
        assert "attempt 1" in outcome.error
        assert "WorkerCrashError" in outcome.error

    def test_crashed_server_retried_to_identical_scan(self):
        """Retried payloads replay the same seed: a crash-then-retry run
        is bit-identical to a clean run of the same seed."""
        clean = run_fleet_scans(3, config=SMALL, base_seed=7, workers=1)
        cfg = dataclasses.replace(SMALL, fault_plan=CRASH_ONCE)
        for workers in (1, 2):
            chaotic = run_fleet_scans(3, config=cfg, base_seed=7,
                                workers=workers, backoff_base=0.0)
            assert chaotic == clean
            assert not any(s.failed for s in chaotic)

    def test_exhausted_retries_degrade_not_abort(self):
        """Every index comes back even when every attempt crashes; the
        placeholders are marked failed with the final error attached."""
        cfg = dataclasses.replace(SMALL, fault_plan=CRASH_ALWAYS)
        for workers in (1, 2):
            scans = run_fleet_scans(3, config=cfg, base_seed=0, workers=workers,
                              max_retries=1, backoff_base=0.0)
            assert len(scans) == 3
            assert all(s.failed for s in scans)
            assert all("WorkerCrashError" in s.error for s in scans)
            assert "server 2" in scans[2].error

    def test_degraded_sample_aggregates_skip_failures(self):
        cfg = dataclasses.replace(SMALL, fault_plan=CRASH_ALWAYS)
        healthy = run_fleet_scans(2, config=SMALL, base_seed=0, workers=1)
        broken = run_fleet_scans(1, config=cfg, base_seed=50, workers=1,
                           max_retries=0, backoff_base=0.0)
        sample = FleetSample(scans=healthy + broken)
        assert sample.failed_indices() == [2]
        assert len(sample.completed_scans()) == 2
        assert len(sample.series("contiguity", "2MB")) == 2
        snap = sample.snapshot()
        assert snap["n_servers"] == 3
        assert snap["n_failed_servers"] == 1

    def test_chunk_size_still_accepted(self):
        scans = run_fleet_scans(2, config=SMALL, base_seed=1, workers=2,
                          chunk_size=1)
        assert scans == run_fleet_scans(2, config=SMALL, base_seed=1, workers=1)

    def test_chunked_run_bit_identical(self):
        """Multi-server chunks change only the IPC batching, never the
        scans: a chunked parallel run equals the serial loop."""
        serial = run_fleet_scans(6, config=TINY, base_seed=11, workers=1)
        chunked = run_fleet_scans(6, config=TINY, base_seed=11, workers=2,
                                  chunk_size=3)
        assert chunked == serial

    def test_chunked_run_survives_crash_faults(self):
        """Retries travel as singletons even when the first attempt was
        chunked, so crash-then-retry stays bit-identical to clean."""
        clean = run_fleet_scans(6, config=TINY, base_seed=7, workers=1)
        cfg = dataclasses.replace(TINY, fault_plan=CRASH_ONCE)
        chaotic = run_fleet_scans(6, config=cfg, base_seed=7, workers=2,
                                  chunk_size=4, backoff_base=0.0)
        assert chaotic == clean
        assert not any(s.failed for s in chaotic)


class TestChunkResolution:
    def test_timeout_forces_singletons(self):
        assert _resolve_chunk(8, 100, 4, server_timeout=1.0) == 1

    def test_explicit_validated(self):
        assert _resolve_chunk(8, 100, 4, server_timeout=None) == 8
        with pytest.raises(ConfigurationError):
            _resolve_chunk(0, 100, 4, server_timeout=None)

    def test_auto_at_least_one(self):
        assert _resolve_chunk(None, 2, 4, server_timeout=None) >= 1

    def test_config_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(chunk_size=0)


class TestStreaming:
    def test_iter_yields_every_index_once(self):
        seen = dict(iter_fleet_scans(5, config=TINY, base_seed=2,
                                     workers=1))
        assert sorted(seen) == [0, 1, 2, 3, 4]
        assert seen == dict(enumerate(
            run_fleet_scans(5, config=TINY, base_seed=2, workers=1)))

    def test_survey_matches_run_fleet_snapshot(self):
        cfg = FleetConfig(n_servers=8, server=TINY, base_seed=5, workers=1)
        sample = run_fleet(cfg)
        summary = survey_fleet(cfg)
        assert summary.snapshot() == sample.snapshot()
        assert (summary.vmstat_totals().snapshot()
                == sample.vmstat_totals().snapshot())

    def test_survey_parallel_chunked_identical(self):
        cfg = FleetConfig(n_servers=8, server=TINY, base_seed=5, workers=1)
        par = dataclasses.replace(cfg, workers=2, chunk_size=3)
        assert survey_fleet(par).snapshot() == survey_fleet(cfg).snapshot()

    def test_survey_aggregates_degraded_servers(self):
        cfg = FleetConfig(
            n_servers=3, workers=1, max_retries=0, backoff_base=0.0,
            server=dataclasses.replace(TINY, fault_plan=CRASH_ALWAYS))
        summary = survey_fleet(cfg)
        assert summary.n_servers == 3
        assert summary.n_failed_servers == 3
        assert summary.snapshot() == run_fleet(cfg).snapshot()


class TestManifestBitIdentity:
    def test_64_server_manifest_identical_workers_1_vs_8(self):
        """Satellite: the manifest's deterministic view from a 64-server
        campaign is byte-identical for workers=1 and workers=8."""
        import json

        from repro.telemetry import TelemetryConfig, deterministic_view

        cfg = FleetConfig(n_servers=64, server=TINY, base_seed=42,
                          workers=1, telemetry=TelemetryConfig())
        m1 = run_fleet(cfg).manifest
        m8 = run_fleet(dataclasses.replace(cfg, workers=8)).manifest
        assert (json.dumps(deterministic_view(m1), sort_keys=True)
                == json.dumps(deterministic_view(m8), sort_keys=True))

    def test_survey_manifest_matches_run_fleet(self):
        from repro.telemetry import TelemetryConfig, deterministic_view

        cfg = FleetConfig(n_servers=8, server=TINY, base_seed=6,
                          workers=1, telemetry=TelemetryConfig())
        assert (deterministic_view(survey_fleet(cfg).manifest)
                == deterministic_view(run_fleet(cfg).manifest))


class TestSurveyFit:
    def test_small_survey_fits(self):
        need = check_survey_fit(4, MiB(64), workers=1,
                                available_bytes=1 << 30)
        assert 0 < need < (1 << 30)

    def test_oversized_survey_rejected_with_typed_error(self):
        with pytest.raises(ConfigurationError, match="available"):
            check_survey_fit(10**6, MiB(512), workers=4,
                             available_bytes=1 << 30)

    def test_estimate_scales_with_workers_not_servers(self):
        one = estimate_survey_bytes(1000, MiB(64), workers=1)
        four = estimate_survey_bytes(1000, MiB(64), workers=4)
        huge = estimate_survey_bytes(2000, MiB(64), workers=1)
        assert four > one
        # Doubling the fleet only adds per-scan slack, not per-server
        # simulator footprint.
        assert huge - one < estimate_survey_bytes(1, MiB(64), workers=1)


class TestEmptyFleetAggregates:
    def test_fraction_without_any_empty(self):
        sample = FleetSample(scans=[])
        assert sample.fraction_without_any("2MB") == 0.0
        assert sample.fraction_without_any("1GB") == 0.0

    def test_source_breakdown_empty(self):
        assert FleetSample(scans=[]).source_breakdown() == {}
