"""Property-based tests over core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ResizeConfig, target_unmovable_frames
from repro.core.hwext import MigrationEntry
from repro.mm import AllocSource, MigrateType, PsiTracker
from repro.sim import slice_of
from repro.sim.tlb import SHIFT_4K, SetAssocTLB
from repro.units import LINES_PER_PAGE

from conftest import make_contiguitas, make_linux


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31), st.integers(2, 20))
def test_kernel_consistency_under_random_ops(seed, mem_blocks):
    """Any alloc/free/pin interleaving leaves both kernels' bookkeeping
    exact: free counts match the frame arrays and confinement holds."""
    rng = random.Random(seed)
    mem_mib = mem_blocks * 2
    for kernel in (make_linux(mem_mib), make_contiguitas(max(8, mem_mib))):
        live = []
        for _ in range(120):
            roll = rng.random()
            if live and roll < 0.4:
                handle = live.pop(rng.randrange(len(live)))
                if handle.pinned:
                    kernel.unpin_pages(handle)
                kernel.free_pages(handle)
            else:
                try:
                    if roll < 0.7:
                        handle = kernel.alloc_pages(
                            rng.choice([0, 0, 1, 3]))
                    else:
                        handle = kernel.alloc_pages(
                            0, source=rng.choice(
                                [AllocSource.NETWORKING,
                                 AllocSource.SLAB]))
                    if rng.random() < 0.1:
                        kernel.pin_pages(handle)
                    live.append(handle)
                except Exception:
                    pass
        kernel.check_consistency()
        if hasattr(kernel, "confinement_violations"):
            assert kernel.confinement_violations() == 0


@settings(max_examples=100)
@given(st.floats(0, 100), st.floats(0, 100), st.integers(512, 10**7))
def test_resize_target_bounded(pu, pm, mem):
    """Algorithm 1 never proposes a negative-beyond-total or explosive
    target: the factor stays within the coefficient envelope."""
    cfg = ResizeConfig()
    target = target_unmovable_frames(pu, pm, mem, cfg)
    max_factor = (pu / cfg.threshold_unmov) * cfg.c_ue + \
        cfg.threshold_mov * cfg.c_me + 1
    assert target <= mem * (1 + max_factor)
    # Shrinking can aim below zero mathematically; the resizer clamps via
    # its min-blocks floor, but the pure function stays finite.
    assert isinstance(target, int)


@settings(max_examples=100)
@given(st.integers(0, 100), st.integers(0, LINES_PER_PAGE))
def test_redirect_consistent_with_ptr(dst, ptr):
    """For every Ptr, lines below it serve from dst, the rest from src."""
    entry = MigrationEntry(src_ppn=1000, dst_ppn=2000 + dst, ptr=ptr)
    for line in (0, ptr // 2, max(0, ptr - 1), ptr,
                 LINES_PER_PAGE - 1):
        if line >= LINES_PER_PAGE:
            continue
        served = entry.redirect(line)
        if line < ptr:
            assert served == entry.dst_ppn
        else:
            assert served == entry.src_ppn


@settings(max_examples=50)
@given(st.lists(st.integers(0, 2**20), min_size=1, max_size=200),
       st.integers(2, 16))
def test_slice_hash_total_and_stable(lines, nslices):
    """The slice hash maps every line to a valid slice, deterministically."""
    for line in lines:
        s1 = slice_of(line, nslices)
        s2 = slice_of(line, nslices)
        assert s1 == s2
        assert 0 <= s1 < nslices


@settings(max_examples=50)
@given(st.lists(st.integers(0, 5000), min_size=1, max_size=300))
def test_tlb_never_exceeds_capacity(vpns):
    """A set-associative TLB holds at most entries() translations."""
    tlb = SetAssocTLB(64, 4)
    for vpn in vpns:
        if not tlb.lookup(vpn, SHIFT_4K):
            tlb.fill(vpn, SHIFT_4K)
    held = sum(len(s) for s in tlb._sets)
    assert held <= 64
    for entry_set in tlb._sets:
        assert len(entry_set) <= 4


@settings(max_examples=50)
@given(st.lists(st.tuples(st.floats(0, 10_000), st.floats(1, 10_000)),
                min_size=1, max_size=50))
def test_psi_stays_in_range(events):
    """Pressure is a percentage: always within [0, 100] regardless of the
    stall/sample sequence."""
    psi = PsiTracker(halflife_ticks=1000)
    for stall, elapsed in events:
        psi.record_stall(stall)
        p = psi.sample(elapsed)
        assert 0.0 <= p <= 100.0


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31))
def test_contiguitas_regions_partition_memory(seed):
    """The two region allocators always partition the pageblock space:
    no overlap, no gap, boundary consistent with the layout."""
    rng = random.Random(seed)
    kernel = make_contiguitas(mem_mib=16)
    live = []
    for _ in range(60):
        if live and rng.random() < 0.4:
            kernel.free_pages(live.pop())
        else:
            try:
                live.append(kernel.alloc_pages(
                    0, source=rng.choice(list(AllocSource))))
            except Exception:
                break
        assert kernel.movable.start_block == 0
        assert kernel.movable.end_block == kernel.layout.boundary_block
        assert kernel.unmovable.start_block == kernel.layout.boundary_block
        assert kernel.unmovable.end_block == kernel.mem.npageblocks
