"""Compaction: scanners, unmovable skipping, downtime accounting."""

import pytest

from repro.errors import MigrationError
from repro.mm import (
    AllocationInfo,
    AllocSource,
    BuddyAllocator,
    Compactor,
    HandleRegistry,
    MigrateType,
    MigrationCostModel,
    PageHandle,
    PageblockTable,
    PhysicalMemory,
    VmStat,
    can_migrate_sw,
    move_allocation,
)
from repro.units import MAX_ORDER, MiB


def build(mem_mib=8):
    mem = PhysicalMemory(MiB(mem_mib))
    table = PageblockTable(mem)
    stat = VmStat()
    buddy = BuddyAllocator(mem, table, stat)
    buddy.seed_free()
    handles = HandleRegistry()
    compactor = Compactor(mem, stat, MigrationCostModel(), victim_cores=7)
    return mem, buddy, handles, compactor


def fragment(buddy, handles, keep_every=2, source=AllocSource.USER):
    """Checkerboard all of memory: allocate every frame, then free every
    keep_every-th, so no free pageblock exists anywhere."""
    pfns = []
    while True:
        pfn = buddy.alloc(0, MigrateType.MOVABLE, source)
        if pfn is None:
            break
        pfns.append(pfn)
    live = []
    for i, pfn in enumerate(pfns):
        if i % keep_every == 0:
            handles.register(PageHandle(pfn, 0, MigrateType.MOVABLE,
                                        source, 0))
            live.append(pfn)
        else:
            buddy.free(pfn)
    return live


def test_compaction_creates_pageblock():
    mem, buddy, handles, compactor = build()
    fragment(buddy, handles)
    # The low blocks are checkered: no free pageblock-order block there
    # until compaction consolidates.
    result = compactor.compact(buddy, handles, target_order=MAX_ORDER)
    assert result.satisfied
    assert result.pages_migrated > 0
    assert buddy.largest_free_order() == MAX_ORDER
    buddy.check_consistency()


def test_compaction_moves_pages_toward_high_addresses():
    mem, buddy, handles, compactor = build()
    live = fragment(buddy, handles)
    before = sorted(h.pfn for h in handles.live_handles())
    compactor.compact(buddy, handles, target_order=MAX_ORDER)
    after = sorted(h.pfn for h in handles.live_handles())
    assert sum(after) > sum(before)


def test_compaction_updates_handles():
    mem, buddy, handles, compactor = build()
    fragment(buddy, handles)
    compactor.compact(buddy, handles, target_order=MAX_ORDER)
    for handle in handles.live_handles():
        info = mem.allocation_info(handle.pfn)
        assert info.pfn == handle.pfn  # head still matches


def test_compaction_skips_unmovable():
    mem, buddy, handles, compactor = build()
    # Unmovable page in the first block: that block can never be emptied.
    un = buddy.alloc(0, MigrateType.UNMOVABLE, AllocSource.NETWORKING)
    handles.register(PageHandle(un, 0, MigrateType.UNMOVABLE,
                                AllocSource.NETWORKING, 0))
    fragment(buddy, handles)
    result = compactor.compact(buddy, handles, target_order=MAX_ORDER)
    assert result.pages_skipped_unmovable >= 1
    assert mem.is_allocated(un)
    assert mem.allocation_info(un).source is AllocSource.NETWORKING


def test_compaction_skips_pinned():
    mem, buddy, handles, compactor = build()
    pfn = buddy.alloc(0, MigrateType.MOVABLE, AllocSource.USER, pinned=True)
    handles.register(PageHandle(pfn, 0, MigrateType.MOVABLE,
                                AllocSource.USER, 0, pinned=True))
    fragment(buddy, handles)
    result = compactor.compact(buddy, handles, target_order=MAX_ORDER)
    assert mem.allocation_info(pfn).pfn == pfn  # did not move
    assert result.pages_skipped_unmovable >= 1


def test_compaction_downtime_scales_with_victims():
    results = []
    for victims in (1, 7):
        mem, buddy, handles, compactor = build()
        compactor.victim_cores = victims
        fragment(buddy, handles)
        results.append(compactor.compact(buddy, handles,
                                         target_order=MAX_ORDER))
    assert results[0].pages_migrated == results[1].pages_migrated
    assert results[1].downtime_cycles > results[0].downtime_cycles


def test_compaction_respects_migration_budget():
    mem, buddy, handles, compactor = build()
    fragment(buddy, handles)
    result = compactor.compact(buddy, handles, target_order=MAX_ORDER,
                               max_migrations=10)
    assert result.pages_migrated <= 10


def test_compaction_noop_when_already_satisfied():
    mem, buddy, handles, compactor = build()
    result = compactor.compact(buddy, handles, target_order=MAX_ORDER)
    assert result.satisfied
    assert result.pages_migrated == 0


def test_cost_model_linear_in_victims():
    cost = MigrationCostModel()
    d1 = cost.downtime_cycles(1)
    d8 = cost.downtime_cycles(8)
    assert d8 - d1 == 7 * cost.per_victim_cycles


class TestCanMigrateSw:
    """The software-movability predicate that every skip path keys on:
    only plain, unpinned user memory is software-movable (§2.1)."""

    def _info(self, **kwargs) -> AllocationInfo:
        defaults = dict(pfn=0, order=0, migratetype=MigrateType.MOVABLE,
                        source=AllocSource.USER, pinned=False, birth=0)
        defaults.update(kwargs)
        return AllocationInfo(**defaults)

    def test_plain_user_memory_movable(self):
        assert can_migrate_sw(self._info())

    def test_pinned_user_memory_not_movable(self):
        assert not can_migrate_sw(self._info(pinned=True))

    def test_every_kernel_source_not_movable(self):
        for source in AllocSource:
            if source is AllocSource.USER:
                continue
            assert not can_migrate_sw(self._info(source=source)), source

    def test_poisoned_placeholder_not_movable(self):
        # Hard-offlined frames are parked as KERNEL_OTHER placeholders,
        # so compaction and evacuation route around them for free.
        info = self._info(source=AllocSource.KERNEL_OTHER, poisoned=True)
        assert not can_migrate_sw(info)


class TestMoveAllocationSkipPaths:
    def test_pinned_page_raises(self):
        mem, buddy, handles, _ = build(mem_mib=4)
        src = buddy.alloc(0, MigrateType.MOVABLE, AllocSource.USER,
                          pinned=True)
        dst = buddy.take_free_split(buddy.free_heads_in(0, mem.nframes)[-1],
                                    0)
        with pytest.raises(MigrationError, match="pinned=True"):
            move_allocation(mem, src, dst)
        assert mem.is_allocated(src)

    def test_device_visible_source_raises(self):
        mem, buddy, handles, _ = build(mem_mib=4)
        src = buddy.alloc(0, MigrateType.UNMOVABLE, AllocSource.NETWORKING)
        dst = buddy.take_free_split(buddy.free_heads_in(0, mem.nframes)[-1],
                                    0)
        with pytest.raises(MigrationError, match="NETWORKING"):
            move_allocation(mem, src, dst)
        assert mem.allocation_info(src).source is AllocSource.NETWORKING

    def test_hardware_assist_moves_pinned_page(self):
        # Contiguitas-HW relocates even pinned/device-visible memory
        # (paper §3.3); the software-only guard is bypassed.
        mem, buddy, handles, _ = build(mem_mib=4)
        src = buddy.alloc(0, MigrateType.MOVABLE, AllocSource.USER,
                          pinned=True)
        dst = buddy.take_free_split(buddy.free_heads_in(0, mem.nframes)[-1],
                                    0)
        info = move_allocation(mem, src, dst, hardware_assisted=True)
        assert info.pinned
        assert mem.is_allocated(dst)
        assert mem.allocation_info(dst).pinned
