"""Durable checkpoint/restore: envelope, store, watchdog, and the
crash-recovery contract — a run killed at any checkpoint boundary and
resumed produces byte-identical results to an uninterrupted run."""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    DEFAULT_DEADLINE_S,
    FORMAT_VERSION,
    MAGIC,
    CheckpointStore,
    DeadlineWatchdog,
    encode_checkpoint,
    inspect_checkpoint,
    read_checkpoint,
)
from repro.errors import (
    CheckpointCorruptError,
    CheckpointVersionError,
    CheckpointWriteError,
    ConfigurationError,
    SimCrashError,
)
from repro.faults import FaultPlan, FaultSpec, NAMED_PLANS, injecting
from repro.units import MiB


class TestEnvelope:
    def test_encode_read_round_trip(self, tmp_path):
        path = tmp_path / "x.ckpt"
        payload = {"nums": list(range(50)), "nested": {"a": (1, 2)}}
        path.write_bytes(encode_checkpoint(
            "demo", 7, payload, meta={"seed": 3}))
        ckpt = read_checkpoint(path)
        assert ckpt.kind == "demo"
        assert ckpt.step == 7
        assert ckpt.meta == {"seed": 3}
        assert ckpt.payload == payload

    def test_truncation_is_typed_corruption(self, tmp_path):
        path = tmp_path / "x.ckpt"
        data = encode_checkpoint("demo", 1, {"k": "v" * 100})
        path.write_bytes(data[:-10])
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(path)

    def test_short_file_is_typed_corruption(self, tmp_path):
        path = tmp_path / "x.ckpt"
        path.write_bytes(b"RP")
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            read_checkpoint(path)

    def test_bit_flip_breaks_checksum(self, tmp_path):
        path = tmp_path / "x.ckpt"
        data = bytearray(encode_checkpoint("demo", 1, {"k": "v" * 100}))
        data[-5] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            read_checkpoint(path)

    def test_version_skew_is_its_own_type(self, tmp_path):
        path = tmp_path / "x.ckpt"
        data = bytearray(encode_checkpoint("demo", 1, {}))
        data[4:8] = (FORMAT_VERSION + 1).to_bytes(4, "big")
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointVersionError):
            read_checkpoint(path)
        # ...and the subclassing means generic corruption handling —
        # including the store's last-good fallback — catches it too.
        assert issubclass(CheckpointVersionError, CheckpointCorruptError)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.ckpt"
        data = bytearray(encode_checkpoint("demo", 1, {}))
        data[:4] = b"JUNK"
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptError, match="magic"):
            read_checkpoint(path)
        assert MAGIC == b"RPCK"

    def test_inspect_statuses(self, tmp_path):
        good = tmp_path / "good.ckpt"
        good.write_bytes(encode_checkpoint("demo", 4, {"a": 1},
                                           meta={"seed": 9}))
        info = inspect_checkpoint(good)
        assert info["status"] == "ok"
        assert info["kind"] == "demo" and info["step"] == 4
        assert info["meta"] == {"seed": 9}

        assert inspect_checkpoint(tmp_path / "nope.ckpt")["status"] \
            == "missing"

        flipped = bytearray(good.read_bytes())
        flipped[-1] ^= 0xFF
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(bytes(flipped))
        assert inspect_checkpoint(bad)["status"] == "corrupt"

        skew = bytearray(good.read_bytes())
        skew[4:8] = (99).to_bytes(4, "big")
        vsk = tmp_path / "skew.ckpt"
        vsk.write_bytes(bytes(skew))
        assert inspect_checkpoint(vsk)["status"] == "version-skew"


class TestStore:
    def test_rotation_keeps_two_generations(self, tmp_path):
        store = CheckpointStore(tmp_path, "run")
        store.save("demo", 1, {"step": 1})
        store.save("demo", 2, {"step": 2})
        store.save("demo", 3, {"step": 3})
        assert read_checkpoint(store.current_path).step == 3
        assert read_checkpoint(store.previous_path).step == 2
        assert store.load_latest().payload == {"step": 3}

    def test_corrupt_current_falls_back_to_previous(self, tmp_path):
        store = CheckpointStore(tmp_path, "run")
        store.save("demo", 1, {"step": 1})
        store.save("demo", 2, {"step": 2})
        data = bytearray(open(store.current_path, "rb").read())
        data[-3] ^= 0xFF
        open(store.current_path, "wb").write(bytes(data))
        ckpt = store.load_latest()
        assert ckpt.step == 1

    def test_version_skewed_current_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path, "run")
        store.save("demo", 1, {"step": 1})
        store.save("demo", 2, {"step": 2})
        data = bytearray(open(store.current_path, "rb").read())
        data[4:8] = (FORMAT_VERSION + 1).to_bytes(4, "big")
        open(store.current_path, "wb").write(bytes(data))
        assert store.load_latest().step == 1

    def test_both_corrupt_raises_current_error(self, tmp_path):
        store = CheckpointStore(tmp_path, "run")
        store.save("demo", 1, {"step": 1})
        store.save("demo", 2, {"step": 2})
        for path in (store.current_path, store.previous_path):
            data = bytearray(open(path, "rb").read())
            data[-3] ^= 0xFF
            open(path, "wb").write(bytes(data))
        with pytest.raises(CheckpointCorruptError) as err:
            store.load_latest()
        assert store.current_path in str(err.value)

    def test_empty_store_returns_none(self, tmp_path):
        assert CheckpointStore(tmp_path, "run").load_latest() is None

    def test_injected_write_fail_leaves_generations_intact(self, tmp_path):
        store = CheckpointStore(tmp_path, "run")
        store.save("demo", 1, {"step": 1})
        store.save("demo", 2, {"step": 2})
        plan = FaultPlan("wf", (
            FaultSpec("checkpoint.write-fail", rate=1.0, max_fires=1),))
        with injecting(plan, seed=0):
            with pytest.raises(CheckpointWriteError):
                store.save("demo", 3, {"step": 3})
        # Both generations untouched, no temp litter.
        assert read_checkpoint(store.current_path).step == 2
        assert read_checkpoint(store.previous_path).step == 1
        assert [f for f in os.listdir(tmp_path)
                if f.startswith(".tmp-")] == []

    def test_inspect_describes_both_generations(self, tmp_path):
        store = CheckpointStore(tmp_path, "run")
        store.save("demo", 1, {}, meta={"checkpoint_every": 5})
        report = store.inspect()
        assert report["name"] == "run"
        current, previous = report["generations"]
        assert current["status"] == "ok"
        assert current["meta"]["checkpoint_every"] == 5
        assert previous["status"] == "missing"


class TestWatchdog:
    def test_missing_then_ok_then_hung(self, tmp_path):
        path = tmp_path / "run.ckpt"
        now = [1000.0]
        dog = DeadlineWatchdog(path, deadline_s=60.0,
                               clock=lambda: now[0])
        assert dog.status() == "missing"
        assert dog.age_s() is None

        path.write_bytes(b"x")
        os.utime(path, (1000.0, 1000.0))
        assert dog.status() == "ok"

        now[0] = 1059.0
        assert dog.status() == "ok"
        now[0] = 1061.0
        assert dog.status() == "hung"
        assert dog.age_s() == pytest.approx(61.0)

    def test_describe_fields(self, tmp_path):
        dog = DeadlineWatchdog(tmp_path / "x.ckpt")
        desc = dog.describe()
        assert desc["status"] == "missing"
        assert desc["deadline_s"] == DEFAULT_DEADLINE_S


def _crash_plan(boundary: int) -> FaultPlan:
    """A plan whose sim.crash fires exactly at the Nth checkpoint
    boundary (1-based)."""
    return FaultPlan("kill", (
        FaultSpec("sim.crash", rate=1.0, max_fires=1,
                  skip=boundary - 1),))


class TestWorkloadCrashResume:
    STEPS = 12
    EVERY = 2

    def _config(self, seed):
        from repro.workloads.config import WorkloadConfig

        return WorkloadConfig(mem_bytes=MiB(16), steps=self.STEPS,
                              seed=seed)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**31),
           boundary=st.integers(1, STEPS // EVERY))
    def test_kill_at_any_boundary_resumes_byte_identical(
            self, tmp_path_factory, seed, boundary):
        from repro.workloads import run_workload

        tmp = tmp_path_factory.mktemp("ck")
        config = self._config(seed)
        with injecting(_crash_plan(boundary), seed=0):
            with pytest.raises(SimCrashError):
                run_workload(config, checkpoint_every=self.EVERY,
                             checkpoint_dir=str(tmp))
        resumed = run_workload(config, checkpoint_every=self.EVERY,
                               checkpoint_dir=str(tmp), resume=True)
        reference = run_workload(config)
        assert (json.dumps(resumed.snapshot(), sort_keys=True)
                == json.dumps(reference.snapshot(), sort_keys=True))

    def test_resume_restores_from_exact_boundary(self, tmp_path):
        """The resumed run continues from the crash step, not from
        scratch: its store's first post-resume save is step 8."""
        from repro.workloads import run_workload

        config = self._config(5)
        with injecting(_crash_plan(3), seed=0):  # dies at step 6
            with pytest.raises(SimCrashError):
                run_workload(config, checkpoint_every=2,
                             checkpoint_dir=str(tmp_path))
        store = CheckpointStore(str(tmp_path), "workload")
        assert store.load_latest().step == 6
        run_workload(config, checkpoint_every=2,
                     checkpoint_dir=str(tmp_path), resume=True)
        assert store.load_latest().step == self.STEPS

    def test_checkpoint_payload_is_self_describing(self, tmp_path):
        from repro.workloads import run_workload

        config = self._config(5)
        run_workload(config, checkpoint_every=4,
                     checkpoint_dir=str(tmp_path))
        ckpt = CheckpointStore(str(tmp_path), "workload").load_latest()
        assert ckpt.payload["config"] == config
        assert ckpt.meta["checkpoint_every"] == 4


class TestCrashRestartPlan:
    def test_named_plan_registered_with_both_sites(self):
        plan = NAMED_PLANS["crash-restart"]
        sites = {spec.site for spec in plan.specs}
        assert sites == {"checkpoint.write-fail", "sim.crash"}

    def test_write_fail_tolerated_then_crash_then_identical_resume(
            self, tmp_path):
        """The full harness semantics: boundary 1's write dies before
        any rename (tolerated — the run continues), boundary 2's write
        lands and sim.crash kills the run, and resumption from that
        checkpoint finishes byte-identically."""
        from repro.workloads import run_workload

        config = TestWorkloadCrashResume()._config(11)
        store = CheckpointStore(str(tmp_path), "workload")
        with injecting(NAMED_PLANS["crash-restart"], seed=0):
            with pytest.raises(SimCrashError):
                run_workload(config, checkpoint_every=2,
                             checkpoint_dir=str(tmp_path))
        # Boundary 1 (step 2) failed before the rename, so the first
        # surviving generation is boundary 2 (step 4).
        assert store.load_latest().step == 4
        resumed = run_workload(config, checkpoint_every=2,
                               checkpoint_dir=str(tmp_path), resume=True)
        reference = run_workload(config)
        assert resumed.snapshot() == reference.snapshot()


class TestLoadgenCrashResume:
    def _config(self, seed):
        from repro.workloads.tracegen import LoadgenConfig

        return LoadgenConfig(rate_rps=150_000.0, duration_s=1e-3,
                             seed=seed)

    def test_kill_and_resume_rows_identical(self, tmp_path):
        from repro.workloads.tracegen import run_loadgen

        config = self._config(7)
        with injecting(_crash_plan(2), seed=0):
            with pytest.raises(SimCrashError):
                run_loadgen(config, checkpoint_every=25,
                            checkpoint_dir=str(tmp_path))
        resumed = run_loadgen(config, checkpoint_every=25,
                              checkpoint_dir=str(tmp_path), resume=True)
        reference = run_loadgen(config)
        assert resumed.rows() == reference.rows()
        assert resumed.requests == reference.requests
        assert resumed.achieved_rps == reference.achieved_rps


def _small_fleet(seed, n_servers=4, telemetry=None):
    from repro.fleet import FleetConfig, ServerConfig

    return FleetConfig(
        n_servers=n_servers,
        server=ServerConfig(mem_bytes=MiB(32), min_uptime_steps=30,
                            max_uptime_steps=60),
        base_seed=seed, workers=1, telemetry=telemetry)


class TestFleetResume:
    def test_survey_kill_and_resume_byte_identical_manifest(
            self, tmp_path):
        from repro.fleet import survey_fleet
        from repro.telemetry import TelemetryConfig, deterministic_view

        telemetry = TelemetryConfig()
        config = _small_fleet(3, telemetry=telemetry)
        with injecting(_crash_plan(2), seed=0):
            with pytest.raises(SimCrashError):
                survey_fleet(config, checkpoint_every=1,
                             checkpoint_dir=str(tmp_path))
        resumed = survey_fleet(config, checkpoint_every=1,
                               checkpoint_dir=str(tmp_path), resume=True)
        reference = survey_fleet(config)
        assert (json.dumps(deterministic_view(resumed.manifest),
                           sort_keys=True)
                == json.dumps(deterministic_view(reference.manifest),
                              sort_keys=True))

    def test_run_fleet_kill_and_resume_equal_scans(self, tmp_path):
        from repro.fleet import run_fleet

        config = _small_fleet(5)
        with injecting(_crash_plan(2), seed=0):
            with pytest.raises(SimCrashError):
                run_fleet(config, checkpoint_every=1,
                          checkpoint_dir=str(tmp_path))
        resumed = run_fleet(config, checkpoint_every=1,
                            checkpoint_dir=str(tmp_path), resume=True)
        reference = run_fleet(config)
        assert resumed == reference

    def test_resume_skips_finished_servers(self, tmp_path):
        from repro.fleet import run_fleet

        config = _small_fleet(5)
        with injecting(_crash_plan(2), seed=0):
            with pytest.raises(SimCrashError):
                run_fleet(config, checkpoint_every=1,
                          checkpoint_dir=str(tmp_path))
        ckpt = CheckpointStore(str(tmp_path), "fleet").load_latest()
        assert sorted(ckpt.payload["scans"]) == [0, 1]

    def test_campaign_mismatch_is_configuration_error(self, tmp_path):
        from repro.fleet import run_fleet

        run_fleet(_small_fleet(5), checkpoint_every=1,
                  checkpoint_dir=str(tmp_path))
        other = _small_fleet(5, n_servers=6)
        with pytest.raises(ConfigurationError,
                           match="different campaign"):
            run_fleet(other, checkpoint_every=1,
                      checkpoint_dir=str(tmp_path), resume=True)

    def test_resume_with_no_checkpoint_starts_fresh(self, tmp_path):
        from repro.fleet import run_fleet

        config = _small_fleet(9, n_servers=2)
        fresh = run_fleet(config, checkpoint_every=1,
                          checkpoint_dir=str(tmp_path / "empty"),
                          resume=True)
        assert fresh == run_fleet(config)


class TestRestoreSanitizer:
    def test_restore_runs_invariant_sweep(self, tmp_path):
        """A checkpoint whose kernel state was corrupted in flight is
        rejected by the restore-time sanitizer, not silently resumed."""
        from repro.checkpoint import restore_kernel
        from repro.errors import SanitizerError
        from repro.mm import KernelConfig, LinuxKernel

        kernel = LinuxKernel(KernelConfig(mem_bytes=MiB(16)))
        kernel.alloc_pages(0)
        # Sabotage the free accounting the sweep cross-checks.
        kernel.buddy.nr_free += 7
        with pytest.raises(SanitizerError):
            restore_kernel(kernel)


class TestExperimentMidCellResume:
    def test_checkpoints_land_under_cache_key(self, tmp_path):
        from repro.experiments import ResultCache, run_experiment

        cache = ResultCache(str(tmp_path))
        overrides = {"n_servers": 2, "mem_mib": 32,
                     "min_uptime_steps": 30, "max_uptime_steps": 60}
        result = run_experiment("fleet-survey", overrides=overrides,
                                workers=1, cache=cache,
                                checkpoint_every=1)
        ckdir = os.path.join(str(tmp_path), "checkpoints", result.key)
        # The fleet-survey producer fans out through run_fleet, whose
        # store is named "fleet".
        assert os.path.isfile(os.path.join(ckdir, "fleet.ckpt"))
        # Rows identical to a checkpoint-free run of the same cell.
        plain = run_experiment("fleet-survey", overrides=overrides,
                               workers=1,
                               cache=ResultCache(str(tmp_path / "b")))
        assert result.rows == plain.rows

    def test_killed_cell_resumes_from_checkpoint(self, tmp_path):
        from repro.experiments import ResultCache, run_experiment

        cache = ResultCache(str(tmp_path))
        overrides = {"n_servers": 4, "mem_mib": 32,
                     "min_uptime_steps": 30, "max_uptime_steps": 60}
        with injecting(_crash_plan(2), seed=0):
            with pytest.raises(SimCrashError):
                run_experiment("fleet-survey", overrides=overrides,
                               workers=1, cache=cache,
                               checkpoint_every=1)
        resumed = run_experiment("fleet-survey", overrides=overrides,
                                 workers=1, cache=cache,
                                 checkpoint_every=1)
        assert not resumed.cached
        plain = run_experiment("fleet-survey", overrides=overrides,
                               workers=1,
                               cache=ResultCache(str(tmp_path / "b")))
        assert resumed.rows == plain.rows


class TestCheckpointCli:
    def _seed_store(self, tmp_path):
        from repro.workloads import run_workload

        config = TestWorkloadCrashResume()._config(5)
        with injecting(_crash_plan(2), seed=0):
            with pytest.raises(SimCrashError):
                run_workload(config, checkpoint_every=2,
                             checkpoint_dir=str(tmp_path))
        return config

    def test_inspect_lists_generations_and_watchdog(
            self, tmp_path, capsys):
        from repro.cli import main

        self._seed_store(tmp_path)
        main(["checkpoint", "inspect", str(tmp_path)])
        out = capsys.readouterr().out
        assert "workload" in out
        assert "current" in out and "previous" in out
        assert "watchdog ok" in out

    def test_inspect_json_reports_status(self, tmp_path, capsys):
        from repro.cli import main

        self._seed_store(tmp_path)
        main(["checkpoint", "inspect", str(tmp_path), "--json"])
        reports = json.loads(capsys.readouterr().out)
        assert reports[0]["generations"][0]["status"] == "ok"
        assert reports[0]["watchdog"]["status"] == "ok"

    def test_inspect_missing_dir_exits(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no such checkpoint"):
            main(["checkpoint", "inspect", str(tmp_path / "nope")])

    def test_resume_reconstructs_run_from_payload(
            self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads import run_workload

        config = self._seed_store(tmp_path)
        main(["checkpoint", "resume", str(tmp_path)])
        captured = capsys.readouterr()
        assert "resuming workload from step 4" in captured.err
        resumed = json.loads(captured.out)
        assert resumed == run_workload(config).snapshot()

    def test_resume_empty_dir_exits(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no checkpoints"):
            main(["checkpoint", "resume", str(tmp_path)])


class TestManifestVolatileOnly:
    def test_checkpoint_keys_never_touch_deterministic_view(self):
        from repro.fleet import survey_fleet
        from repro.telemetry import TelemetryConfig, deterministic_view
        import tempfile

        telemetry = TelemetryConfig()
        config = _small_fleet(13, n_servers=2, telemetry=telemetry)
        with tempfile.TemporaryDirectory() as tmp:
            ck = survey_fleet(config, checkpoint_every=1,
                              checkpoint_dir=tmp)
        plain = survey_fleet(config)
        assert ck.manifest["volatile"]["checkpoint_every"] == 1
        assert "checkpoint_every" not in plain.manifest["volatile"]
        assert (deterministic_view(ck.manifest)
                == deterministic_view(plain.manifest))
