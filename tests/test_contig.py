"""Range evacuation (alloc_contig_range building block)."""

import pytest

from repro.mm import (
    AllocSource,
    BuddyAllocator,
    HandleRegistry,
    MigrateType,
    PageHandle,
    PageblockTable,
    PhysicalMemory,
    RangeEvacuator,
    VmStat,
)
from repro.units import MiB, PAGEBLOCK_FRAMES


def build(mem_mib=8):
    mem = PhysicalMemory(MiB(mem_mib))
    table = PageblockTable(mem)
    stat = VmStat()
    buddy = BuddyAllocator(mem, table, stat)
    buddy.seed_free()
    return mem, buddy, HandleRegistry(), RangeEvacuator(mem, stat)


def alloc_tracked(buddy, handles, order=0, mt=MigrateType.MOVABLE,
                  source=AllocSource.USER, pinned=False):
    pfn = buddy.alloc(order, mt, source, pinned=pinned)
    handle = PageHandle(pfn, order, mt, source, 0, pinned)
    handles.register(handle)
    return handle


def test_evacuate_empty_range_succeeds():
    mem, buddy, handles, evac = build()
    result = evac.evacuate(buddy, handles, 0, PAGEBLOCK_FRAMES)
    assert result.success
    assert result.pages_migrated == 0


def test_evacuate_moves_movable_pages_out():
    mem, buddy, handles, evac = build()
    inside = [alloc_tracked(buddy, handles) for _ in range(20)]
    assert all(h.pfn < PAGEBLOCK_FRAMES for h in inside)
    result = evac.evacuate(buddy, handles, 0, PAGEBLOCK_FRAMES)
    assert result.success
    assert result.pages_migrated == 20
    assert all(h.pfn >= PAGEBLOCK_FRAMES for h in inside)
    assert not mem.allocated_mask()[:PAGEBLOCK_FRAMES].any()
    buddy.check_consistency()


def test_evacuated_range_merges_to_full_block():
    mem, buddy, handles, evac = build()
    for _ in range(20):
        alloc_tracked(buddy, handles)
    evac.evacuate(buddy, handles, 0, PAGEBLOCK_FRAMES)
    # The emptied block should be one pageblock-order free block again.
    assert mem.free_order[0] == 9


def test_evacuate_blocked_by_unmovable():
    mem, buddy, handles, evac = build()
    blocker = alloc_tracked(buddy, handles, mt=MigrateType.UNMOVABLE,
                            source=AllocSource.NETWORKING)
    result = evac.evacuate(buddy, handles, 0, PAGEBLOCK_FRAMES)
    assert not result.success
    assert result.blocked_by == blocker.pfn


def test_evacuate_blocked_by_pinned():
    mem, buddy, handles, evac = build()
    blocker = alloc_tracked(buddy, handles, pinned=True)
    result = evac.evacuate(buddy, handles, 0, PAGEBLOCK_FRAMES)
    assert not result.success
    assert result.blocked_by == blocker.pfn


def test_hardware_assisted_evacuation_moves_unmovable():
    mem, buddy, handles, evac = build()
    blocker = alloc_tracked(buddy, handles, mt=MigrateType.UNMOVABLE,
                            source=AllocSource.NETWORKING)
    result = evac.evacuate(buddy, handles, 0, PAGEBLOCK_FRAMES,
                           hardware_assisted=True)
    assert result.success
    assert blocker.pfn >= PAGEBLOCK_FRAMES
    # HW migration has no downtime.
    assert result.downtime_cycles == 0


def test_hardware_assisted_preserves_pin_state():
    mem, buddy, handles, evac = build()
    blocker = alloc_tracked(buddy, handles, pinned=True)
    result = evac.evacuate(buddy, handles, 0, PAGEBLOCK_FRAMES,
                           hardware_assisted=True)
    assert result.success
    assert blocker.pinned
    assert mem.is_pinned(blocker.pfn)


def test_evacuate_fails_when_no_space_outside():
    mem, buddy, handles, evac = build(mem_mib=2)  # single pageblock
    alloc_tracked(buddy, handles)
    result = evac.evacuate(buddy, handles, 0, PAGEBLOCK_FRAMES)
    assert not result.success


def test_capture_range_takes_all_free_blocks():
    mem, buddy, handles, evac = build()
    evac.capture_range(buddy, 0, PAGEBLOCK_FRAMES)
    assert buddy.nr_free == buddy.nr_frames - PAGEBLOCK_FRAMES
    assert mem.free_order[0] == -1
    buddy.check_consistency()


def test_downtime_accounted_for_software_moves():
    mem, buddy, handles, evac = build()
    alloc_tracked(buddy, handles)
    result = evac.evacuate(buddy, handles, 0, PAGEBLOCK_FRAMES)
    assert result.downtime_cycles > 0
