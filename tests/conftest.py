"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import ContiguitasConfig, ContiguitasKernel
from repro.mm import AllocSource, KernelConfig, LinuxKernel
from repro.units import MiB


def make_linux(mem_mib: int = 32, **kwargs) -> LinuxKernel:
    """A small baseline kernel for tests."""
    return LinuxKernel(KernelConfig(mem_bytes=MiB(mem_mib), **kwargs))


def make_contiguitas(mem_mib: int = 32, **kwargs) -> ContiguitasKernel:
    """A small Contiguitas kernel for tests."""
    return ContiguitasKernel(ContiguitasConfig(mem_bytes=MiB(mem_mib),
                                               **kwargs))


@pytest.fixture
def linux() -> LinuxKernel:
    return make_linux()


@pytest.fixture
def contiguitas() -> ContiguitasKernel:
    return make_contiguitas()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


def churn(kernel, rng: random.Random, steps: int = 2000,
          unmovable_fraction: float = 0.2, pin_fraction: float = 0.02,
          free_probability: float = 0.45, fill_cache: bool = False,
          cache_churn: float = 0.0) -> list:
    """Drive a mixed allocate/free workload; returns live handles.

    With ``fill_cache=True`` memory is first filled with reclaimable page
    cache, the production steady state.  ``cache_churn`` adds a per-step
    probability of a fresh page-cache allocation (file reads), which keeps
    reclaim cycling through the address space — the regime where new
    allocations land at scattered just-reclaimed addresses and unmovable
    pages spread across pageblocks.
    """
    from repro.errors import OutOfMemoryError

    live = []
    if fill_cache:
        # Fill until the kernel has to reclaim: "memory is full" from the
        # allocator's point of view.  (free_frames() alone would spin on
        # Contiguitas, whose unmovable region never holds page cache.)
        from repro.mm import vmstat as ev

        before = kernel.stat[ev.PAGES_RECLAIMED]
        try:
            while (kernel.free_frames() > 0
                   and kernel.stat[ev.PAGES_RECLAIMED] == before):
                kernel.alloc_pages(0, reclaimable=True)
        except OutOfMemoryError:  # pragma: no cover - depends on layout
            pass
    for step in range(steps):
        if cache_churn and rng.random() < cache_churn:
            kernel.alloc_pages(0, reclaimable=True)
        if live and rng.random() < free_probability:
            handle = live.pop(rng.randrange(len(live)))
            if handle.pinned:
                kernel.unpin_pages(handle)
            kernel.free_pages(handle)
            continue
        r = rng.random()
        if r < pin_fraction:
            handle = kernel.alloc_pages(0)
            kernel.pin_pages(handle)
        elif r < pin_fraction + unmovable_fraction:
            source = rng.choice(
                [AllocSource.NETWORKING, AllocSource.SLAB,
                 AllocSource.FILESYSTEM, AllocSource.PAGETABLE])
            handle = kernel.alloc_pages(0, source=source)
        else:
            handle = kernel.alloc_pages(0)
        live.append(handle)
        if step % 250 == 0:
            kernel.advance(1000)
    return live
