"""IOMMU/IOTLB/device-TLB model and variable-size migration mappings."""

import pytest

from repro.core.hwext import HwMigrationEngine, MigrationEntry
from repro.errors import ConfigurationError, HardwareProtocolError
from repro.sim.iommu import DeviceTlb, InvalidationRequest, Iommu
from repro.units import LINES_PER_PAGE


class TestIommu:
    def test_translation_fills_iotlb(self):
        iommu = Iommu()
        cold = iommu.translate(42)
        warm = iommu.translate(42)
        assert cold > warm
        assert iommu.walks == 1

    def test_invalidation_queue_roundtrip(self):
        iommu = Iommu()
        iommu.translate(42)
        req = InvalidationRequest(iova_vpn=42, device_tlb=False)
        iommu.post(req)
        cycles = iommu.process()
        assert req.completed
        assert cycles >= Iommu.DESCRIPTOR_CYCLES
        # Next translation walks again.
        walks = iommu.walks
        iommu.translate(42)
        assert iommu.walks == walks + 1

    def test_device_tlb_forwarding(self):
        iommu = Iommu()
        nic = DeviceTlb()
        iommu.attach_device(nic)
        nic.fill(7)
        iommu.post(InvalidationRequest(iova_vpn=7))
        iommu.process()
        assert nic.invalidations == 1
        assert not nic.lookup(7)
        # lookup after invalidation counts as a miss that refills.

    def test_queue_depth_enforced(self):
        iommu = Iommu(queue_depth=1)
        iommu.post(InvalidationRequest(iova_vpn=1))
        with pytest.raises(ConfigurationError):
            iommu.post(InvalidationRequest(iova_vpn=2))

    def test_synchronous_invalidation_scales_with_devices(self):
        iommu = Iommu()
        base = iommu.synchronous_invalidate_cycles()
        iommu.attach_device(DeviceTlb())
        iommu.attach_device(DeviceTlb())
        assert iommu.synchronous_invalidate_cycles() > base


class TestVariableSizeMappings:
    def test_entry_covers_range(self):
        entry = MigrationEntry(src_ppn=100, dst_ppn=200, size_pages=4)
        assert entry.covers(100)
        assert entry.covers(103)
        assert not entry.covers(104)
        assert entry.total_lines == 4 * LINES_PER_PAGE

    def test_redirect_spans_pages(self):
        entry = MigrationEntry(src_ppn=100, dst_ppn=200, size_pages=2,
                               ptr=LINES_PER_PAGE + 8)
        # Page 0 fully copied; page 1 copied through line 7.
        assert entry.redirect(5, page_offset=0) == 200
        assert entry.redirect(7, page_offset=1) == 201
        assert entry.redirect(8, page_offset=1) == 101

    def test_redirect_bounds(self):
        entry = MigrationEntry(src_ppn=1, dst_ppn=2, size_pages=2)
        with pytest.raises(HardwareProtocolError):
            entry.redirect(0, page_offset=2)

    def test_engine_migrates_multipage_buffer(self):
        eng = HwMigrationEngine()
        eng.submit_migrate(100, 200, size_pages=4)
        eng.copy_lines(100, max_lines=LINES_PER_PAGE + 10)
        # First page served from destination, later pages from source.
        assert eng.access(100, 0) == 200
        assert eng.access(101, 9) == 201
        assert eng.access(101, 10) == 101
        assert eng.access(103, 0) == 103
        eng.copy_lines(100)  # finish
        entry = eng.table.lookup(100)
        assert entry.done
        eng.submit_clear(100)

    def test_table_lookup_covering(self):
        eng = HwMigrationEngine()
        eng.submit_migrate(100, 200, size_pages=4)
        assert eng.table.lookup_covering(102) is not None
        assert eng.table.lookup_covering(104) is None
