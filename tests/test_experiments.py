"""Experiment orchestration: specs, content-addressed cache, sweeps.

Every test uses a ``tmp_path`` cache root and registers throwaway specs
(cleaned up via ``unregister``), so nothing leaks into the durable
``benchmarks/results/cache`` store or the built-in registry.
"""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    CACHE_ENV,
    ExperimentSpec,
    ResultCache,
    all_specs,
    canonical_json,
    default_cache_dir,
    get_spec,
    load_cached,
    register,
    result_key,
    run_experiment,
    run_sweep,
    unregister,
)
from repro.faults import FaultPlan, FaultSpec


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


@pytest.fixture
def counting_spec():
    """A registered toy spec whose producer counts its invocations."""
    calls = {"n": 0}

    def producer(ctx):
        calls["n"] += 1
        return [{"x": ctx.params["x"], "seed": ctx.seed,
                 "call": calls["n"]}]

    spec = register(ExperimentSpec(
        name="toy-count", description="test", producer=producer,
        defaults={"x": 1, "y": "a"}, grid={"x": (1, 2, 3)}, seed=5))
    yield spec, calls
    unregister("toy-count")


class TestSpecRegistry:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="kebab-case"):
            ExperimentSpec(name="Bad_Name", description="",
                           producer=lambda ctx: [])
        with pytest.raises(ConfigurationError, match="JSON scalar"):
            ExperimentSpec(name="x", description="",
                           producer=lambda ctx: [],
                           defaults={"k": [1, 2]})
        with pytest.raises(ConfigurationError, match="no default"):
            ExperimentSpec(name="x", description="",
                           producer=lambda ctx: [], grid={"k": (1,)})
        with pytest.raises(ConfigurationError, match="version"):
            ExperimentSpec(name="x", description="",
                           producer=lambda ctx: [], version=0)

    def test_duplicate_registration_rejected(self, counting_spec):
        spec, _ = counting_spec
        with pytest.raises(ConfigurationError, match="already registered"):
            register(spec)
        register(spec, replace=True)  # explicit override is fine

    def test_unknown_spec_lists_registered(self):
        with pytest.raises(ConfigurationError, match="fleet-survey"):
            get_spec("no-such-experiment")

    def test_resolve_rejects_unknown_keys(self, counting_spec):
        spec, _ = counting_spec
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            spec.resolve({"z": 1})

    def test_cells_deterministic(self, counting_spec):
        spec, _ = counting_spec
        assert spec.cells() == [{"x": 1}, {"x": 2}, {"x": 3}]

    def test_builtins_registered(self):
        names = [s.name for s in all_specs()]
        for expected in ("fleet-survey", "fig04-contiguity-cdf",
                         "fig06-sources"):
            assert expected in names


class TestResultKey:
    def test_stable_and_order_independent(self):
        a = result_key("s", 1, {"a": 1, "b": 2}, 7)
        b = result_key("s", 1, {"b": 2, "a": 1}, 7)
        assert a == b
        assert len(a) == 64

    def test_every_component_changes_key(self):
        base = result_key("s", 1, {"a": 1}, 7)
        assert result_key("t", 1, {"a": 1}, 7) != base
        assert result_key("s", 2, {"a": 1}, 7) != base
        assert result_key("s", 1, {"a": 2}, 7) != base
        assert result_key("s", 1, {"a": 1}, 8) != base
        plan = FaultPlan("p", (FaultSpec("mm.memory.uce", rate=0.5),))
        assert result_key("s", 1, {"a": 1}, 7, plan.snapshot()) != base

    def test_canonical_json_rejects_unserialisable(self):
        with pytest.raises(ConfigurationError, match="serialisable"):
            canonical_json({"f": object()})

    def test_cache_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "alt"))
        assert default_cache_dir() == str(tmp_path / "alt")


class TestRunExperiment:
    def test_miss_then_hit(self, cache, counting_spec):
        _, calls = counting_spec
        r1 = run_experiment("toy-count", cache=cache)
        r2 = run_experiment("toy-count", cache=cache)
        assert (r1.cached, r2.cached) == (False, True)
        assert calls["n"] == 1
        assert r1.rows == r2.rows
        assert r1.key == r2.key

    def test_rows_byte_identical_fresh_vs_cached(self, cache,
                                                 counting_spec):
        r1 = run_experiment("toy-count", cache=cache)
        r2 = run_experiment("toy-count", cache=cache)
        assert canonical_json(r1.rows) == canonical_json(r2.rows)
        assert r1.report() == r2.report()

    def test_counters_in_manifest(self, cache, counting_spec):
        r1 = run_experiment("toy-count", cache=cache)
        assert r1.manifest["counters"]["experiment.cache_miss"] == 1
        r2 = run_experiment("toy-count", cache=cache)
        assert r2.manifest["counters"]["experiment.cache_hit"] == 1
        assert "experiment.cache_miss" not in r2.manifest["counters"]

    def test_seed_and_config_address_separately(self, cache,
                                                counting_spec):
        _, calls = counting_spec
        run_experiment("toy-count", cache=cache)
        run_experiment("toy-count", seed=6, cache=cache)
        run_experiment("toy-count", overrides={"x": 9}, cache=cache)
        assert calls["n"] == 3

    def test_plan_changes_address(self, cache, counting_spec):
        _, calls = counting_spec
        plan = FaultPlan("p", (FaultSpec("mm.memory.uce", rate=0.1),))
        run_experiment("toy-count", cache=cache)
        run_experiment("toy-count", plan=plan, cache=cache)
        assert calls["n"] == 2

    def test_force_recomputes(self, cache, counting_spec):
        _, calls = counting_spec
        run_experiment("toy-count", cache=cache)
        r = run_experiment("toy-count", cache=cache, force=True)
        assert calls["n"] == 2
        assert not r.cached

    def test_producer_must_return_list(self, cache):
        register(ExperimentSpec(name="toy-bad", description="",
                                producer=lambda ctx: {"not": "a list"}))
        try:
            with pytest.raises(ConfigurationError, match="list"):
                run_experiment("toy-bad", cache=cache)
        finally:
            unregister("toy-bad")

    def test_manifest_written_to_path(self, cache, counting_spec,
                                      tmp_path):
        path = tmp_path / "run.json"
        run_experiment("toy-count", cache=cache,
                       manifest_path=str(path))
        manifest = json.loads(path.read_text())
        assert manifest["kind"] == "experiment"
        assert manifest["config"]["experiment"] == "toy-count"

    def test_load_cached(self, cache, counting_spec):
        assert load_cached("toy-count", cache=cache) is None
        run_experiment("toy-count", cache=cache)
        found = load_cached("toy-count", cache=cache)
        assert found is not None and found.cached

    def test_corrupt_entry_is_a_miss(self, cache, counting_spec):
        _, calls = counting_spec
        r = run_experiment("toy-count", cache=cache)
        path = cache.path_for(r.key)
        with open(path, "w") as fh:
            fh.write("{truncated")
        run_experiment("toy-count", cache=cache)
        assert calls["n"] == 2


class TestNestedFetch:
    def test_figures_share_one_dependency_run(self, cache):
        calls = {"dep": 0}

        def dep_producer(ctx):
            calls["dep"] += 1
            return [{"v": ctx.params["n"] * 10}]

        def fig_producer(ctx):
            rows = ctx.fetch("toy-dep", overrides={"n": ctx.params["n"]})
            return [{"derived": rows[0]["v"] + 1}]

        register(ExperimentSpec(name="toy-dep", description="",
                                producer=dep_producer, defaults={"n": 2}))
        register(ExperimentSpec(name="toy-fig-a", description="",
                                producer=fig_producer, defaults={"n": 2}))
        register(ExperimentSpec(name="toy-fig-b", description="",
                                producer=fig_producer, defaults={"n": 2}))
        try:
            a = run_experiment("toy-fig-a", cache=cache)
            b = run_experiment("toy-fig-b", cache=cache)
            assert calls["dep"] == 1  # second figure hit the cached dep
            assert a.rows == b.rows == [{"derived": 21}]
            counters = b.manifest["counters"]
            assert counters["experiment.cache_hit"] == 1
        finally:
            for name in ("toy-dep", "toy-fig-a", "toy-fig-b"):
                unregister(name)


class TestSweep:
    def test_sweep_covers_grid_and_checkpoints(self, cache,
                                               counting_spec):
        _, calls = counting_spec
        sweep = run_sweep("toy-count", cache=cache)
        assert len(sweep.results) == 3
        assert calls["n"] == 3
        assert sweep.n_cached == 0
        assert [r.config["x"] for r in sweep.results] == [1, 2, 3]
        counters = sweep.manifest["counters"]
        assert counters["experiment.sweep_cells"] == 3
        assert "experiment.sweep_resumed" not in counters

    def test_interrupted_sweep_resumes(self, cache, counting_spec):
        """A killed sweep's finished cells are served from checkpoint on
        rerun; only unfinished cells recompute."""
        _, calls = counting_spec
        # Finish cell x=1 as a standalone run (same content address the
        # sweep will compute), as if a prior sweep died after it.
        run_experiment("toy-count", overrides={"x": 1}, cache=cache,
                       emit_manifest=False)
        assert calls["n"] == 1

        sweep = run_sweep("toy-count", cache=cache)
        assert calls["n"] == 3  # x=2 and x=3 only
        counters = sweep.manifest["counters"]
        assert counters["experiment.sweep_resumed"] == 1
        assert counters["experiment.cache_hit"] == 1
        assert counters["experiment.cache_miss"] == 2
        assert sweep.manifest["aggregates"] == {
            "cells_total": 3, "cells_cached": 1, "cells_computed": 2}

    def test_producer_crash_leaves_no_torn_cell(self, cache):
        state = {"fail": True, "calls": 0}

        def flaky(ctx):
            state["calls"] += 1
            if ctx.params["x"] == 2 and state["fail"]:
                raise RuntimeError("injected producer crash")
            return [{"x": ctx.params["x"]}]

        register(ExperimentSpec(name="toy-flaky", description="",
                                producer=flaky, defaults={"x": 1},
                                grid={"x": (1, 2, 3)}))
        try:
            with pytest.raises(RuntimeError, match="injected"):
                run_sweep("toy-flaky", cache=cache)
            assert state["calls"] == 2  # x=1 landed, x=2 died

            state["fail"] = False
            sweep = run_sweep("toy-flaky", cache=cache)
            # x=1 resumed from checkpoint; x=2, x=3 computed fresh.
            assert state["calls"] == 4
            counters = sweep.manifest["counters"]
            assert counters["experiment.sweep_resumed"] == 1
            assert counters["experiment.cache_miss"] == 2
        finally:
            unregister("toy-flaky")

    def test_full_rerun_is_all_resumed(self, cache, counting_spec):
        run_sweep("toy-count", cache=cache)
        sweep = run_sweep("toy-count", cache=cache)
        counters = sweep.manifest["counters"]
        assert counters["experiment.sweep_resumed"] == 3
        assert "experiment.cache_miss" not in counters

    def test_sweep_base_overrides(self, cache, counting_spec):
        _, calls = counting_spec
        sweep = run_sweep("toy-count", overrides={"y": "b"}, cache=cache)
        assert all(r.config["y"] == "b" for r in sweep.results)
        assert sweep.manifest["config"]["overrides"] == {"y": "b"}
        # Grid values win over base overrides on collision.
        sweep2 = run_sweep("toy-count", overrides={"x": 99}, cache=cache)
        assert [r.config["x"] for r in sweep2.results] == [1, 2, 3]


class TestCacheStore:
    def test_atomic_files_only(self, cache, counting_spec):
        run_experiment("toy-count", cache=cache)
        names = []
        for root, _dirs, files in os.walk(cache.root):
            names.extend(files)
        assert all(not n.startswith(".tmp-") for n in names)
        assert len(cache.keys()) == 1

    def test_entry_metadata_round_trip(self, cache, counting_spec):
        r = run_experiment("toy-count", seed=9, cache=cache)
        entry = cache.load(r.key)
        assert entry["spec"] == "toy-count"
        assert entry["seed"] == 9
        assert entry["config"] == r.config
        assert entry["rows"] == r.rows


class TestExperimentCli:
    def _run(self, argv, tmp_path, capsys):
        from repro.cli import main

        main(argv + ["--cache-dir", str(tmp_path / "cli-cache")])
        return capsys.readouterr()

    @pytest.fixture
    def toy(self):
        register(ExperimentSpec(
            name="toy-cli", description="cli test",
            producer=lambda ctx: [{"x": ctx.params["x"],
                                   "seed": ctx.seed}],
            defaults={"x": 1}, grid={"x": (1, 2)}, seed=3))
        yield
        unregister("toy-cli")

    def test_list(self, capsys):
        from repro.cli import main

        main(["experiment", "list"])
        out = capsys.readouterr().out
        assert "fig04-contiguity-cdf" in out
        main(["experiment", "list", "--json"])
        specs = json.loads(capsys.readouterr().out)
        assert any(s["name"] == "fleet-survey" for s in specs)

    def test_run_twice_stdout_identical_status_on_stderr(
            self, toy, tmp_path, capsys):
        first = self._run(["experiment", "run", "toy-cli", "--json"],
                          tmp_path, capsys)
        second = self._run(["experiment", "run", "toy-cli", "--json"],
                           tmp_path, capsys)
        assert first.out == second.out  # byte-identical rows
        assert "[computed]" in first.err
        assert "[cache hit]" in second.err
        assert json.loads(first.out) == [{"x": 1, "seed": 3}]

    def test_run_set_overrides_and_seed(self, toy, tmp_path, capsys):
        out = self._run(["experiment", "run", "toy-cli", "--json",
                         "--set", "x=7", "--seed", "1"],
                        tmp_path, capsys).out
        assert json.loads(out) == [{"x": 7, "seed": 1}]

    def test_bad_set_spelling(self, toy, tmp_path, capsys):
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            self._run(["experiment", "run", "toy-cli", "--set", "x"],
                      tmp_path, capsys)

    def test_sweep_and_report(self, toy, tmp_path, capsys):
        swept = self._run(["experiment", "sweep", "toy-cli"],
                          tmp_path, capsys)
        assert "2 cells" in swept.err
        reported = self._run(["experiment", "report", "toy-cli",
                              "--set", "x=2", "--json"],
                             tmp_path, capsys)
        assert json.loads(reported.out) == [{"x": 2, "seed": 3}]

    def test_report_miss_exits(self, toy, tmp_path, capsys):
        with pytest.raises(SystemExit, match="no cached result"):
            self._run(["experiment", "report", "toy-cli",
                       "--set", "x=9"], tmp_path, capsys)
