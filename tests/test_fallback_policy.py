"""Fallback policy table and pageblock metadata."""

import numpy as np
import pytest

from repro.mm import MigrateType, PageblockTable, PhysicalMemory
from repro.mm.fallback import fallback_types, should_steal_pageblock
from repro.units import MAX_ORDER, MiB, PAGEBLOCK_FRAMES


class TestFallbackTable:
    def test_every_type_has_fallbacks(self):
        for mt in MigrateType:
            fbs = fallback_types(mt)
            assert len(fbs) == 2
            assert mt not in fbs

    def test_unmovable_prefers_reclaimable(self):
        assert fallback_types(MigrateType.UNMOVABLE)[0] is \
            MigrateType.RECLAIMABLE

    def test_movable_avoids_unmovable_first(self):
        assert fallback_types(MigrateType.MOVABLE)[0] is \
            MigrateType.RECLAIMABLE

    def test_kernel_requests_always_steal(self):
        assert should_steal_pageblock(MigrateType.UNMOVABLE, 0)
        assert should_steal_pageblock(MigrateType.RECLAIMABLE, 0)

    def test_movable_steals_only_large_blocks(self):
        assert not should_steal_pageblock(MigrateType.MOVABLE, 0)
        assert not should_steal_pageblock(MigrateType.MOVABLE, 3)
        assert should_steal_pageblock(MigrateType.MOVABLE,
                                      MAX_ORDER // 2)


class TestPageblockTable:
    @pytest.fixture
    def table(self):
        return PageblockTable(PhysicalMemory(MiB(8)))

    def test_initially_movable(self, table):
        assert table.count(MigrateType.MOVABLE) == 4
        assert table.get(0) is MigrateType.MOVABLE

    def test_set_by_pfn(self, table):
        table.set(PAGEBLOCK_FRAMES + 5, MigrateType.UNMOVABLE)
        assert table.get_block(1) is MigrateType.UNMOVABLE
        assert table.get_block(0) is MigrateType.MOVABLE

    def test_blocks_of(self, table):
        table.set_block(2, MigrateType.RECLAIMABLE)
        assert np.array_equal(table.blocks_of(MigrateType.RECLAIMABLE), [2])

    def test_block_range(self, table):
        start, end = table.block_range(1)
        assert (start, end) == (PAGEBLOCK_FRAMES, 2 * PAGEBLOCK_FRAMES)
