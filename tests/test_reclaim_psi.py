"""Reclaim LRU, watermarks, and PSI tracking."""

import pytest

from repro.errors import ConfigurationError
from repro.mm import PsiTracker, ReclaimLRU, VmStat, Watermarks
from repro.mm import vmstat as ev
from repro.mm.handle import PageHandle
from repro.mm.page import AllocSource, MigrateType


def handle(pfn, order=0):
    return PageHandle(pfn, order, MigrateType.MOVABLE, AllocSource.USER, 0)


class TestWatermarks:
    def test_ordering(self):
        wm = Watermarks.for_frames(100_000)
        assert wm.min < wm.low < wm.high

    def test_scales_with_size(self):
        small = Watermarks.for_frames(10_000)
        big = Watermarks.for_frames(100_000)
        assert big.low == 10 * small.low

    def test_minimum_floor(self):
        wm = Watermarks.for_frames(10)
        assert wm.min >= 1 and wm.low >= 2 and wm.high >= 3


class TestReclaimLRU:
    def test_reclaims_oldest_first(self):
        stat = VmStat()
        lru = ReclaimLRU(stat)
        freed = []
        handles = [handle(i) for i in range(5)]
        for h in handles:
            lru.register(h)
        lru.reclaim(lambda h: freed.append(h), target_frames=2)
        assert freed == handles[:2]
        assert stat[ev.PAGES_RECLAIMED] == 2

    def test_touch_moves_to_back(self):
        lru = ReclaimLRU(VmStat())
        freed = []
        a, b = handle(0), handle(1)
        lru.register(a)
        lru.register(b)
        lru.touch(a)
        lru.reclaim(lambda h: freed.append(h), target_frames=1)
        assert freed == [b]

    def test_forget_skips_handle(self):
        lru = ReclaimLRU(VmStat())
        freed = []
        a = handle(0)
        lru.register(a)
        lru.forget(a)
        assert lru.reclaim(lambda h: freed.append(h), 10) == 0
        assert freed == []

    def test_already_freed_handles_skipped(self):
        lru = ReclaimLRU(VmStat())
        a, b = handle(0), handle(1)
        lru.register(a)
        lru.register(b)
        a.freed = True
        freed = []
        got = lru.reclaim(lambda h: freed.append(h), 1)
        assert got == 1
        assert freed == [b]

    def test_reclaim_counts_large_orders(self):
        lru = ReclaimLRU(VmStat())
        big = handle(0, order=9)
        lru.register(big)
        assert lru.reclaim(lambda h: None, 1) == 512


class TestPsi:
    def test_no_stall_means_zero_pressure(self):
        psi = PsiTracker()
        assert psi.sample(1000) == 0.0

    def test_full_stall_approaches_hundred(self):
        psi = PsiTracker(halflife_ticks=100)
        for _ in range(100):
            psi.record_stall(1000)
            psi.sample(1000)
        assert psi.pressure > 90

    def test_pressure_decays(self):
        psi = PsiTracker(halflife_ticks=1000)
        psi.record_stall(500)
        p1 = psi.sample(1000)
        p2 = psi.sample(1000)
        assert p1 > p2 > 0

    def test_pressure_capped_at_100(self):
        psi = PsiTracker(halflife_ticks=10)
        psi.record_stall(10_000)
        assert psi.sample(100) <= 100.0

    def test_negative_stall_rejected(self):
        psi = PsiTracker()
        with pytest.raises(ConfigurationError):
            psi.record_stall(-1)

    def test_bad_halflife_rejected(self):
        with pytest.raises(ConfigurationError):
            PsiTracker(halflife_ticks=0)

    def test_total_stall_accumulates(self):
        psi = PsiTracker()
        psi.record_stall(5)
        psi.record_stall(7)
        assert psi.total_stall_ticks == 12
