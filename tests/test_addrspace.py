"""Address spaces, VMAs, demand faulting, khugepaged integration."""

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.units import FRAME_SIZE, PAGEBLOCK_FRAMES
from repro.vm import EXTENT_BYTES, AddressSpace, VMA

from conftest import make_contiguitas, make_linux


@pytest.fixture
def aspace(linux):
    return AddressSpace(linux)


class TestVMA:
    def test_alignment_enforced(self):
        with pytest.raises(ConfigurationError):
            VMA(1, 4096)
        with pytest.raises(ConfigurationError):
            VMA(0, 100)

    def test_contains(self):
        vma = VMA(EXTENT_BYTES, EXTENT_BYTES)
        assert EXTENT_BYTES in vma
        assert 2 * EXTENT_BYTES - 1 in vma
        assert 2 * EXTENT_BYTES not in vma

    def test_extent_of(self):
        vma = VMA(EXTENT_BYTES, 4 * EXTENT_BYTES)
        extent, offset = vma.extent_of(EXTENT_BYTES + EXTENT_BYTES + 4096)
        assert extent == 1
        assert offset == 4096


class TestFaulting:
    def test_mmap_is_lazy(self, aspace):
        vma = aspace.mmap(8 * EXTENT_BYTES)
        assert vma.resident_frames() == 0
        assert aspace.kernel.free_frames() == aspace.kernel.mem.nframes

    def test_fault_backs_with_thp(self, aspace):
        vma = aspace.mmap(2 * EXTENT_BYTES)
        handle = aspace.fault(vma.start)
        assert handle.order == 9
        assert aspace.thp_faults == 1
        assert vma.resident_frames() == PAGEBLOCK_FRAMES

    def test_fault_idempotent(self, aspace):
        vma = aspace.mmap(EXTENT_BYTES)
        a = aspace.fault(vma.start)
        b = aspace.fault(vma.start + 4096)
        assert a is b
        assert aspace.minor_faults == 1

    def test_partial_extent_uses_base_pages(self, aspace):
        vma = aspace.mmap(FRAME_SIZE * 3)  # less than one extent
        handle = aspace.fault(vma.start)
        assert handle.order == 0
        assert vma.resident_frames() == 1

    def test_thp_ineligible_uses_base_pages(self, aspace):
        vma = aspace.mmap(2 * EXTENT_BYTES, thp_eligible=False)
        handle = aspace.fault(vma.start)
        assert handle.order == 0

    def test_unmapped_access_faults(self, aspace):
        with pytest.raises(ReproError):
            aspace.fault(0x1234)

    def test_munmap_releases_backing(self, aspace):
        vma = aspace.mmap(2 * EXTENT_BYTES)
        aspace.fault(vma.start)
        aspace.fault(vma.start + EXTENT_BYTES)
        released = aspace.munmap(vma)
        assert released == 2 * PAGEBLOCK_FRAMES
        # Page tables went away with the mapping.
        assert aspace.kernel.free_frames() == aspace.kernel.mem.nframes

    def test_munmap_foreign_vma_rejected(self, aspace):
        with pytest.raises(ReproError):
            aspace.munmap(VMA(0, EXTENT_BYTES))


class TestTranslate:
    def test_huge_translation_contiguity(self, aspace):
        vma = aspace.mmap(EXTENT_BYTES)
        pfn0, shift = aspace.translate(vma.start)
        pfn1, _ = aspace.translate(vma.start + 5 * FRAME_SIZE)
        assert shift == 21
        assert pfn1 == pfn0 + 5  # physically contiguous within the THP

    def test_base_translation(self, aspace):
        vma = aspace.mmap(FRAME_SIZE)
        pfn, shift = aspace.translate(vma.start)
        assert shift == 12
        assert aspace.kernel.mem.is_allocated(pfn)


class TestKhugepaged:
    def _fragment_then_map(self, kernel):
        """Force base-page backing by disabling THP during faulting."""
        kernel.config.thp_enabled = False
        aspace = AddressSpace(kernel)
        vma = aspace.mmap(2 * EXTENT_BYTES)
        for off in range(0, vma.length, FRAME_SIZE):
            aspace.fault(vma.start + off)
        kernel.config.thp_enabled = True
        return aspace, vma

    def test_candidates_found(self):
        aspace, vma = self._fragment_then_map(make_linux())
        assert len(aspace.collapse_candidates()) == 2

    def test_pass_collapses_extents(self):
        aspace, vma = self._fragment_then_map(make_linux())
        collapsed = aspace.khugepaged_pass()
        assert collapsed == 2
        assert aspace.huge_coverage() == 1.0
        pfn, shift = aspace.translate(vma.start)
        assert shift == 21
        aspace.kernel.check_consistency()

    def test_pass_respects_budget(self):
        aspace, _ = self._fragment_then_map(make_linux())
        assert aspace.khugepaged_pass(max_collapses=1) == 1
        assert 0.0 < aspace.huge_coverage() < 1.0

    def test_contiguitas_promotes_after_fragmentation(self):
        """Integration: on Contiguitas, khugepaged recovers huge coverage
        even after the full-fragmentation process — the OS-side payoff
        the paper's Fig. 10 quantifies."""
        from repro.workloads import fragment_fully

        kernel = make_contiguitas(mem_mib=64)
        fragment_fully(kernel)
        aspace, vma = self._fragment_then_map(kernel)
        assert aspace.khugepaged_pass(max_collapses=16) > 0
        assert aspace.huge_coverage() > 0.0
