"""Algorithm 1: region resizing from per-region pressure."""

import pytest

from repro.core import ResizeConfig, RegionResizer, target_unmovable_frames
from repro.core.pressure import Region, RegionPressure
from repro.errors import ConfigurationError

CFG = ResizeConfig()
MEM = 100_000  # frames in the unmovable region


def test_expands_when_unmovable_pressure_high():
    target = target_unmovable_frames(
        pressure_unmov=20.0, pressure_mov=0.0, mem_unmov_frames=MEM,
        config=CFG)
    assert target > MEM


def test_shrinks_when_both_pressures_low():
    target = target_unmovable_frames(
        pressure_unmov=0.0, pressure_mov=0.0, mem_unmov_frames=MEM,
        config=CFG)
    assert target < MEM


def test_shrinks_when_movable_pressure_high():
    target = target_unmovable_frames(
        pressure_unmov=0.0, pressure_mov=50.0, mem_unmov_frames=MEM,
        config=CFG)
    assert target < MEM


def test_no_expand_when_both_pressures_high():
    """Algorithm 1's guard: movable pressure at threshold blocks expansion
    (taking movable memory would make things worse)."""
    target = target_unmovable_frames(
        pressure_unmov=50.0, pressure_mov=50.0, mem_unmov_frames=MEM,
        config=CFG)
    assert target <= MEM


def test_expansion_scales_with_pressure():
    lo = target_unmovable_frames(10.0, 0.0, MEM, CFG)
    hi = target_unmovable_frames(40.0, 0.0, MEM, CFG)
    assert hi > lo


def test_shrink_gentler_when_unmovable_pressure_near_threshold():
    near = target_unmovable_frames(4.9, 0.0, MEM, CFG)
    far = target_unmovable_frames(0.0, 0.0, MEM, CFG)
    assert near >= far


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ResizeConfig(threshold_unmov=0)
    with pytest.raises(ConfigurationError):
        ResizeConfig(c_ue=-1)


class TestRegionResizer:
    def test_run_expands_in_steps(self):
        resizer = RegionResizer(ResizeConfig(max_step_blocks=4))
        calls = []
        moved = resizer.run(
            pressure_unmov=50.0, pressure_mov=0.0,
            current_unmov_frames=10_000, frames_per_block=512,
            expand_one=lambda: calls.append("e") or True,
            shrink_one=lambda: calls.append("s") or True)
        assert moved > 0
        assert set(calls) == {"e"}
        assert resizer.expands == moved

    def test_run_shrinks_in_steps(self):
        resizer = RegionResizer()
        moved = resizer.run(
            pressure_unmov=0.0, pressure_mov=0.0,
            current_unmov_frames=100_000, frames_per_block=512,
            expand_one=lambda: True, shrink_one=lambda: True)
        assert moved < 0
        assert resizer.shrinks == -moved

    def test_blocked_expand_stops_pass(self):
        resizer = RegionResizer()
        moved = resizer.run(
            pressure_unmov=50.0, pressure_mov=0.0,
            current_unmov_frames=100_000, frames_per_block=512,
            expand_one=lambda: False, shrink_one=lambda: True)
        assert moved == 0
        assert resizer.blocked_expands == 1

    def test_step_cap_limits_movement(self):
        resizer = RegionResizer(ResizeConfig(max_step_blocks=2))
        moved = resizer.run(
            pressure_unmov=100.0, pressure_mov=0.0,
            current_unmov_frames=1_000_000, frames_per_block=512,
            expand_one=lambda: True, shrink_one=lambda: True)
        assert moved <= 2

    def test_small_delta_no_moves(self):
        resizer = RegionResizer()
        moved = resizer.run(
            pressure_unmov=0.0, pressure_mov=0.0,
            current_unmov_frames=600, frames_per_block=512,
            expand_one=lambda: True, shrink_one=lambda: True)
        # Target delta below one pageblock: nothing to do.
        assert moved == 0


class TestRegionPressure:
    def test_independent_tracking(self):
        rp = RegionPressure(halflife_ticks=100)
        rp.record_stall(Region.UNMOVABLE, 500)
        pressures = rp.sample(1000)
        assert pressures[Region.UNMOVABLE] > 0
        assert pressures[Region.MOVABLE] == 0
        assert rp.unmovable > rp.movable

    def test_sample_returns_both(self):
        rp = RegionPressure()
        out = rp.sample(10)
        assert set(out) == {Region.MOVABLE, Region.UNMOVABLE}
