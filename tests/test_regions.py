"""RegionLayout geometry and boundary moves."""

import pytest

from repro.core import RegionLayout
from repro.errors import ConfigurationError
from repro.units import PAGEBLOCK_FRAMES


def test_initial_fraction():
    layout = RegionLayout.with_initial_unmovable(512, 1 / 16)
    assert layout.unmovable_blocks == 32
    assert layout.movable_blocks == 480


def test_minimum_unmovable_on_tiny_machines():
    layout = RegionLayout.with_initial_unmovable(8, 1 / 16)
    assert layout.unmovable_blocks == 2  # floor


def test_geometry_derivations():
    layout = RegionLayout(total_blocks=16, boundary_block=12)
    assert layout.unmovable_blocks == 4
    assert layout.movable_frames == 12 * PAGEBLOCK_FRAMES
    assert layout.boundary_pfn == 12 * PAGEBLOCK_FRAMES
    assert layout.in_unmovable(layout.boundary_pfn)
    assert not layout.in_unmovable(layout.boundary_pfn - 1)


def test_expand_moves_boundary_down():
    layout = RegionLayout(total_blocks=16, boundary_block=12)
    layout.expand_unmovable()
    assert layout.boundary_block == 11
    assert layout.unmovable_blocks == 5


def test_shrink_moves_boundary_up():
    layout = RegionLayout(total_blocks=16, boundary_block=12)
    layout.shrink_unmovable()
    assert layout.boundary_block == 13


def test_shrink_floor_enforced():
    layout = RegionLayout(total_blocks=16, boundary_block=14,
                          min_unmovable_blocks=2)
    assert not layout.can_shrink_unmovable()
    with pytest.raises(ConfigurationError):
        layout.shrink_unmovable()


def test_expand_ceiling_enforced():
    layout = RegionLayout(total_blocks=16, boundary_block=9,
                          max_unmovable_blocks=8)
    assert not layout.can_expand_unmovable(2)
    with pytest.raises(ConfigurationError):
        layout.expand_unmovable(2)


def test_default_ceiling_is_half_of_memory():
    layout = RegionLayout(total_blocks=32, boundary_block=30)
    assert layout.max_unmovable_blocks == 16


def test_invalid_boundary_rejected():
    with pytest.raises(ConfigurationError):
        RegionLayout(total_blocks=16, boundary_block=16)
    with pytest.raises(ConfigurationError):
        RegionLayout(total_blocks=16, boundary_block=0)
