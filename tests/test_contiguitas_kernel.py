"""ContiguitasKernel: confinement, resizing, pin-migration, HW mode."""

import pytest

from repro.core import ContiguitasConfig, ContiguitasKernel, PlacementPolicy
from repro.errors import OutOfMemoryError
from repro.mm import AllocSource, MigrateType
from repro.mm import vmstat as ev
from repro.units import MAX_ORDER, MiB, PAGEBLOCK_FRAMES

from conftest import churn, make_contiguitas


def test_boot_layout(contiguitas):
    k = contiguitas
    assert k.movable.nr_blocks == k.layout.movable_blocks
    assert k.unmovable.nr_blocks == k.layout.unmovable_blocks
    assert k.movable.end_block == k.unmovable.start_block
    k.check_consistency()


def test_user_allocation_lands_in_movable_region(contiguitas):
    h = contiguitas.alloc_pages(0)
    assert not contiguitas.layout.in_unmovable(h.pfn)
    assert h.migratetype is MigrateType.MOVABLE


def test_kernel_allocation_lands_in_unmovable_region(contiguitas):
    for source in (AllocSource.NETWORKING, AllocSource.SLAB,
                   AllocSource.PAGETABLE, AllocSource.FILESYSTEM):
        h = contiguitas.alloc_pages(0, source=source)
        assert contiguitas.layout.in_unmovable(h.pfn), source


def test_reclaimable_slab_confined_too(contiguitas):
    h = contiguitas.alloc_pages(0, source=AllocSource.SLAB,
                                migratetype=MigrateType.RECLAIMABLE)
    assert contiguitas.layout.in_unmovable(h.pfn)
    assert h.migratetype is MigrateType.UNMOVABLE  # coerced to region type


def test_no_fallback_between_regions(contiguitas):
    assert not contiguitas.movable.fallback_enabled
    assert not contiguitas.unmovable.fallback_enabled
    assert contiguitas.stat[ev.PAGEBLOCK_STEAL] == 0


def test_placement_bias_away_from_border(contiguitas):
    """Unmovable allocations should sit at the top of memory, far from
    the region boundary."""
    h = contiguitas.alloc_pages(0, source=AllocSource.SLAB)
    top_block = contiguitas.mem.npageblocks - 1
    assert contiguitas.mem.pageblock_of(h.pfn) == top_block


def test_pin_migrates_into_unmovable_region(contiguitas):
    h = contiguitas.alloc_pages(0)
    assert not contiguitas.layout.in_unmovable(h.pfn)
    contiguitas.pin_pages(h)
    assert contiguitas.layout.in_unmovable(h.pfn)
    assert h.pinned
    assert contiguitas.stat[ev.PIN_MIGRATIONS] == 1
    assert contiguitas.confinement_violations() == 0


def test_pin_migration_places_near_border(contiguitas):
    """Pin-migrated pages skew short-lived: they go next to the boundary."""
    h = contiguitas.alloc_pages(0)
    contiguitas.pin_pages(h)
    assert contiguitas.mem.pageblock_of(h.pfn) == \
        contiguitas.layout.boundary_block


def test_unpin_and_free_returns_to_unmovable_lists(contiguitas):
    h = contiguitas.alloc_pages(0)
    contiguitas.pin_pages(h)
    contiguitas.unpin_pages(h)
    contiguitas.free_pages(h)
    contiguitas.check_consistency()


def test_unmovable_region_expands_under_demand():
    k = make_contiguitas(mem_mib=32)
    initial = k.layout.unmovable_blocks
    # Demand far beyond the initial unmovable region.
    want = (initial + 4) * PAGEBLOCK_FRAMES
    handles = [k.alloc_pages(0, source=AllocSource.NETWORKING)
               for _ in range(want)]
    assert k.layout.unmovable_blocks > initial
    assert k.stat[ev.REGION_EXPAND] > 0
    assert k.confinement_violations() == 0
    k.check_consistency()


def test_expansion_evacuates_movable_pages():
    k = make_contiguitas(mem_mib=32)
    # Put movable pages right at the boundary: expansion must move them.
    movable = [k.alloc_pages(0) for _ in range(k.movable.nr_frames)]
    for h in movable[: len(movable) // 2]:
        k.free_pages(h)
    want = (k.layout.unmovable_blocks + 2) * PAGEBLOCK_FRAMES
    for _ in range(want):
        k.alloc_pages(0, source=AllocSource.SLAB)
    assert k.stat[ev.REGION_EXPAND] > 0
    assert k.confinement_violations() == 0


def test_resizer_shrinks_idle_unmovable_region():
    k = make_contiguitas(mem_mib=64, initial_unmovable_fraction=0.5)
    initial = k.layout.unmovable_blocks
    for _ in range(50):
        k.advance(200_000)  # plenty of idle resize checks
    assert k.layout.unmovable_blocks < initial
    assert k.stat[ev.REGION_SHRINK] > 0
    k.check_consistency()


def test_shrink_blocked_by_occupied_boundary_without_hw():
    k = make_contiguitas(mem_mib=32, initial_unmovable_fraction=0.25,
                         placement=PlacementPolicy(bias_enabled=False))
    # Occupy the boundary block directly (bias off, prefer low).
    h = k.unmovable.alloc(0, MigrateType.UNMOVABLE, AllocSource.SLAB,
                          prefer="low")
    assert k.mem.pageblock_of(h) == k.layout.boundary_block
    assert not k._shrink_one()


def test_shrink_with_hw_migrates_boundary_occupants():
    k = make_contiguitas(mem_mib=32, initial_unmovable_fraction=0.25,
                         hw_enabled=True)
    pfn = k.unmovable.alloc(0, MigrateType.UNMOVABLE, AllocSource.NETWORKING,
                            prefer="low")
    from repro.mm import PageHandle
    k.handles.register(PageHandle(pfn, 0, MigrateType.UNMOVABLE,
                                  AllocSource.NETWORKING, 0))
    assert k.mem.pageblock_of(pfn) == k.layout.boundary_block
    assert k._shrink_one()
    assert k.stat[ev.HW_MIGRATIONS] >= 1
    k.check_consistency()


def test_contiguity_recoverable_after_churn(rng):
    """The paper's headline: on Contiguitas, contiguity is always
    *recoverable* — compaction with a real budget can assemble a 2 MiB
    block because no unmovable page blocks it (a THP fault's light-touch
    attempt may still fall back under extreme non-reclaimable pressure,
    just like on real kernels)."""
    k = make_contiguitas(mem_mib=32)
    churn(k, rng, steps=3000, unmovable_fraction=0.3, fill_cache=True,
          cache_churn=0.5)
    h = k.alloc_pages(order=9, compact_budget=200_000)
    assert h is not None and h.nframes == 512


def test_gigapage_candidates_restricted_to_movable_region():
    k = make_contiguitas(mem_mib=32)
    candidates = k._contig_candidates(PAGEBLOCK_FRAMES * 2)
    boundary = k.layout.boundary_pfn
    assert candidates
    assert all(end <= boundary for _, end in candidates)


def test_unmovable_oom_when_region_cannot_grow():
    k = make_contiguitas(mem_mib=8)
    # Exhaust movable with unreclaimable user pages so expansion fails.
    user = []
    try:
        while True:
            user.append(k.alloc_pages(0))
    except OutOfMemoryError:
        pass
    with pytest.raises(OutOfMemoryError):
        while True:
            k.alloc_pages(0, source=AllocSource.NETWORKING)


def test_confinement_holds_under_heavy_churn(rng):
    k = make_contiguitas(mem_mib=32)
    churn(k, rng, steps=4000, unmovable_fraction=0.3, pin_fraction=0.05,
          fill_cache=True, cache_churn=0.5)
    assert k.confinement_violations() == 0
    k.check_consistency()


def test_defrag_unmovable_region_requires_hw():
    k = make_contiguitas(mem_mib=32)
    assert k.defrag_unmovable_region() == 0


def test_defrag_unmovable_region_consolidates():
    k = make_contiguitas(mem_mib=32, hw_enabled=True,
                         initial_unmovable_fraction=0.5)
    handles = [k.alloc_pages(0, source=AllocSource.NETWORKING)
               for _ in range(PAGEBLOCK_FRAMES * 3)]
    for i, h in enumerate(handles):
        if i % 3:
            k.free_pages(h)
    moved = k.defrag_unmovable_region()
    assert moved > 0
    k.check_consistency()
