"""PhysicalMemory frame-state bookkeeping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DoubleAllocError
from repro.mm import AllocSource, MigrateType, PhysicalMemory
from repro.units import MiB, PAGEBLOCK_FRAMES


@pytest.fixture
def mem() -> PhysicalMemory:
    return PhysicalMemory(MiB(8))


def test_geometry(mem):
    assert mem.nframes == 2048
    assert mem.npageblocks == 4
    assert mem.free_frames() == 2048


def test_rejects_unaligned_size():
    with pytest.raises(ConfigurationError):
        PhysicalMemory(MiB(1))  # less than one pageblock


def test_rejects_zero_size():
    with pytest.raises(ConfigurationError):
        PhysicalMemory(0)


def test_mark_allocated_and_info(mem):
    mem.mark_allocated(64, 3, MigrateType.UNMOVABLE,
                       AllocSource.NETWORKING, birth=17)
    info = mem.allocation_info(64)
    assert info.pfn == 64
    assert info.order == 3
    assert info.nframes == 8
    assert info.end_pfn == 72
    assert info.migratetype is MigrateType.UNMOVABLE
    assert info.source is AllocSource.NETWORKING
    assert info.birth == 17
    assert info.unmovable


def test_info_from_member_frame_finds_head(mem):
    mem.mark_allocated(0, 4, MigrateType.MOVABLE, AllocSource.USER, 0)
    info = mem.allocation_info(13)
    assert info.pfn == 0
    assert info.order == 4


def test_mark_free_clears_everything(mem):
    mem.mark_allocated(0, 2, MigrateType.MOVABLE, AllocSource.USER, 0)
    assert mem.free_frames() == 2048 - 4
    order = mem.mark_free(0)
    assert order == 2
    assert mem.free_frames() == 2048
    assert not mem.is_allocated(0)
    assert 0 not in mem.alloc_heads


def test_double_allocation_raises_typed(mem):
    mem.mark_allocated(0, 0, MigrateType.MOVABLE, AllocSource.USER, 0)
    with pytest.raises(DoubleAllocError):
        mem.mark_allocated(0, 0, MigrateType.MOVABLE, AllocSource.USER, 0)


def test_pin_unpin(mem):
    mem.mark_allocated(8, 1, MigrateType.MOVABLE, AllocSource.USER, 0)
    assert not mem.is_pinned(8)
    mem.pin(8)
    assert mem.is_pinned(8)
    assert mem.is_pinned(9)
    assert mem.allocation_info(8).unmovable
    mem.unpin(8)
    assert not mem.is_pinned(8)
    assert not mem.allocation_info(8).unmovable


def test_unmovable_mask_kernel_sources(mem):
    mem.mark_allocated(0, 0, MigrateType.MOVABLE, AllocSource.USER, 0)
    mem.mark_allocated(1, 0, MigrateType.UNMOVABLE, AllocSource.SLAB, 0)
    mask = mem.unmovable_mask()
    assert not mask[0]
    assert mask[1]
    assert not mask[2]  # free frame


def test_unmovable_mask_pinned_user(mem):
    mem.mark_allocated(0, 0, MigrateType.MOVABLE, AllocSource.USER, 0,
                       pinned=True)
    assert mem.unmovable_mask()[0]


def test_allocated_mask_counts(mem):
    mem.mark_allocated(0, 3, MigrateType.MOVABLE, AllocSource.USER, 0)
    assert int(np.count_nonzero(mem.allocated_mask())) == 8


def test_pageblock_of(mem):
    assert mem.pageblock_of(0) == 0
    assert mem.pageblock_of(PAGEBLOCK_FRAMES) == 1
    assert mem.pageblock_of(PAGEBLOCK_FRAMES - 1) == 0


class TestPageblockQueries:
    """Vectorised PageblockTable queries against hand-built state."""

    @pytest.fixture
    def table(self, mem):
        from repro.mm.pageblock import PageblockTable
        return PageblockTable(mem, initial=MigrateType.MOVABLE)

    def test_counts_matches_per_type_count(self, table):
        table.set_block(0, MigrateType.UNMOVABLE)
        table.set_block(2, MigrateType.RECLAIMABLE)
        counts = table.counts()
        assert sum(counts.values()) == table.mem.npageblocks
        for mt in MigrateType:
            assert counts[mt] == table.count(mt)
        assert counts[MigrateType.UNMOVABLE] == 1
        assert counts[MigrateType.MOVABLE] == 2

    def test_occupancy_tracks_allocations(self, mem, table):
        assert table.occupancy().tolist() == [0, 0, 0, 0]
        mem.mark_allocated(0, 3, MigrateType.MOVABLE,
                           AllocSource.USER, birth=0)
        start, _ = table.block_range(1)
        mem.mark_allocated(start, 0, MigrateType.MOVABLE,
                           AllocSource.USER, birth=0)
        occ = table.occupancy()
        assert occ.tolist() == [8, 1, 0, 0]
        assert int(occ.sum()) == mem.nframes - mem.free_frames()

    def test_empty_blocks_shrinks_and_recovers(self, mem, table):
        assert table.empty_blocks().tolist() == [0, 1, 2, 3]
        start, _ = table.block_range(2)
        mem.mark_allocated(start, 0, MigrateType.MOVABLE,
                           AllocSource.USER, birth=0)
        assert table.empty_blocks().tolist() == [0, 1, 3]
        mem.mark_free(start)
        assert table.empty_blocks().tolist() == [0, 1, 2, 3]
