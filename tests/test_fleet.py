"""Fleet sampling, statistics, and the uptime non-correlation."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    FleetConfig,
    SimulatedServer,
    ServerConfig,
    cdf_at,
    median,
    pearson,
    percentile,
    run_fleet,
)
from repro.mm.page import AllocSource
from repro.units import MiB


class TestStats:
    def test_pearson_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_pearson_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_pearson_independent_near_zero(self):
        import random
        rng = random.Random(0)
        xs = [rng.random() for _ in range(2000)]
        ys = [rng.random() for _ in range(2000)]
        assert abs(pearson(xs, ys)) < 0.1

    def test_pearson_constant_series(self):
        assert pearson([1, 1, 1], [2, 3, 4]) == 0.0

    def test_pearson_validation(self):
        with pytest.raises(ConfigurationError):
            pearson([1], [1, 2])
        with pytest.raises(ConfigurationError):
            pearson([1], [1])

    def test_cdf_at(self):
        assert cdf_at([1, 2, 3, 4], 2) == 0.5
        assert cdf_at([1, 2, 3, 4], 0) == 0.0
        assert cdf_at([1, 2, 3, 4], 10) == 1.0

    def test_percentile_and_median(self):
        vals = [1, 2, 3, 4, 5]
        assert median(vals) == 3
        assert percentile(vals, 0) == 1
        assert percentile(vals, 100) == 5
        assert percentile(vals, 25) == 2

    def test_percentile_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)
        with pytest.raises(ConfigurationError):
            percentile([1], 200)


class TestFleetSampling:
    @pytest.fixture(scope="class")
    def fleet(self):
        config = ServerConfig(mem_bytes=MiB(64), min_uptime_steps=30,
                              max_uptime_steps=200)
        return run_fleet(FleetConfig(n_servers=6, server=config,
                                     base_seed=7))

    def test_scan_count(self, fleet):
        assert len(fleet.scans) == 6

    def test_scans_have_all_granularities(self, fleet):
        for scan in fleet.scans:
            assert set(scan.contiguity) == {"2MB", "4MB", "32MB", "1GB"}

    def test_unmovable_present_on_every_server(self, fleet):
        for scan in fleet.scans:
            assert scan.unmovable["2MB"] > 0

    def test_contiguity_degrades_with_granularity(self, fleet):
        for scan in fleet.scans:
            assert scan.contiguity["2MB"] >= scan.contiguity["32MB"]
            assert scan.contiguity["32MB"] >= scan.contiguity["1GB"]

    def test_networking_dominates_sources(self, fleet):
        breakdown = fleet.source_breakdown()
        top = max(breakdown, key=breakdown.get)
        assert top is AllocSource.NETWORKING

    def test_source_fractions_sum_to_one(self, fleet):
        assert sum(fleet.source_breakdown().values()) == pytest.approx(1.0)

    def test_aggregates_run(self, fleet):
        assert 0 <= fleet.fraction_without_any("1GB") <= 1
        assert 0 <= fleet.median_unmovable("2MB") <= 1

    def test_same_seed_is_deterministic(self):
        config = ServerConfig(mem_bytes=MiB(64), min_uptime_steps=20,
                              max_uptime_steps=40)
        a = SimulatedServer(config, seed=3).run()
        b = SimulatedServer(config, seed=3).run()
        assert a.contiguity == b.contiguity
        assert a.uptime_steps == b.uptime_steps


class TestScanSnapshotRoundTrip:
    """Pin the ``from_snapshot(snapshot()) == scan`` contract — the
    experiment cache and fleet checkpoints both rely on it, including
    the conditional ``latency``/``failed``/``error`` keys."""

    def _scan(self, **kw):
        from repro.fleet import ServerScan

        base = dict(
            uptime_steps=120, free_frames=4096, free_2m_blocks=3,
            contiguity={"2MB": 0.25, "1GB": 0.0},
            unmovable={"2MB": 0.5, "1GB": 1.0},
            sources={AllocSource.NETWORKING: 7, AllocSource.SLAB: 2},
            vmstat={"pgalloc": 10, "pgfree": 4},
        )
        base.update(kw)
        return ServerScan(**base)

    def test_healthy_scan_round_trips(self):
        from repro.fleet import ServerScan

        scan = self._scan()
        snap = scan.snapshot()
        assert "latency" not in snap
        assert "failed" not in snap and "error" not in snap
        assert ServerScan.from_snapshot(snap) == scan

    def test_latency_fields_round_trip(self):
        from repro.fleet import ServerScan

        scan = self._scan(latency={
            "all": {"requests": 10, "p50_us": 1.0, "p99_us": 2.0,
                    "p999_us": 3.0, "max_us": 4.0},
            "migration": {"requests": 2, "p50_us": 5.0, "p99_us": 6.0,
                          "p999_us": 7.0, "max_us": 8.0},
        })
        rebuilt = ServerScan.from_snapshot(scan.snapshot())
        assert rebuilt == scan
        assert rebuilt.latency["migration"]["p99_us"] == 6.0

    def test_failed_and_error_round_trip(self):
        from repro.fleet import ServerScan

        scan = self._scan(free_frames=0, contiguity={}, unmovable={},
                          sources={}, vmstat={}, failed=True,
                          error="worker crashed: boom")
        snap = scan.snapshot()
        assert snap["failed"] is True and snap["error"].endswith("boom")
        rebuilt = ServerScan.from_snapshot(snap)
        assert rebuilt == scan
        assert rebuilt.failed and rebuilt.error == scan.error

    def test_fleet_sample_from_snapshots(self):
        from repro.fleet import FleetSample

        scans = [self._scan(),
                 self._scan(free_frames=0, failed=True, error="x")]
        sample = FleetSample(scans=scans)
        rebuilt = FleetSample.from_snapshots(
            [s.snapshot() for s in scans])
        assert rebuilt == sample
        assert rebuilt.failed_indices() == [1]

    def test_json_round_trip_is_loss_free(self):
        import json

        from repro.fleet import ServerScan

        scan = self._scan(latency={"all": {"requests": 1, "p50_us": 1.0,
                                           "p99_us": 1.0, "p999_us": 1.0,
                                           "max_us": 1.0}})
        snap = json.loads(json.dumps(scan.snapshot()))
        assert ServerScan.from_snapshot(snap) == scan


class TestFleetReport:
    def test_render_report_contains_all_sections(self):
        from repro.fleet import ServerConfig, render_report
        from repro.units import MiB

        sample = run_fleet(FleetConfig(n_servers=3, server=ServerConfig(
            mem_bytes=MiB(64), min_uptime_steps=30, max_uptime_steps=60),
            base_seed=5))
        report = render_report(sample, title="Test study")
        assert "# Test study" in report
        assert "Fig. 4" in report
        assert "Fig. 5" in report
        assert "Fig. 6" in report
        assert "Pearson" in report
        assert "networking" in report
