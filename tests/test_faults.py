"""Deterministic fault injection: plans, injector, degradation paths.

Covers the acceptance criteria of the robustness issue: seeded plans are
declarative and validated, disabled hooks cost one attribute load plus a
branch, injected faults degrade gracefully at every layer (migration
retries, watermark rescue, hwpoison offlining, supervised fleet), and
the same seed + plan always produces bit-identical results.
"""

from __future__ import annotations

import json
import pickle

import pytest

from conftest import make_contiguitas, make_linux

from repro.errors import (
    ConfigurationError,
    MigrationError,
    OutOfMemoryError,
)
from repro.faults import (
    FAULTS,
    KNOWN_SITES,
    NAMED_PLANS,
    FaultPlan,
    FaultSite,
    FaultSpec,
    fault_site,
    injecting,
)
from repro.fleet import FleetConfig, ServerConfig, run_fleet
from repro.mm import AllocSource, vmstat as ev
from repro.mm.migrate import MIGRATE_MAX_ATTEMPTS, migrate_with_retry
from repro.telemetry import deterministic_view
from repro.units import MiB, PAGEBLOCK_FRAMES


def plan_of(site: str, **kwargs) -> FaultPlan:
    return FaultPlan("test", (FaultSpec(site, **kwargs),))


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_of("mm.buddy.typo")

    def test_duplicate_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan("dup", (FaultSpec("mm.migrate.pin"),
                              FaultSpec("mm.migrate.pin")))

    def test_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            plan_of("mm.migrate.pin", rate=1.5)
        with pytest.raises(ConfigurationError):
            plan_of("mm.migrate.pin", rate=-0.1)

    def test_negative_budgets_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_of("mm.migrate.pin", max_fires=-1)
        with pytest.raises(ConfigurationError):
            plan_of("mm.migrate.pin", skip=-1)

    def test_named_plans_are_valid_and_picklable(self):
        for name, plan in NAMED_PLANS.items():
            assert plan.name == name
            clone = pickle.loads(pickle.dumps(plan))
            assert clone.snapshot() == plan.snapshot()

    def test_snapshot_is_json_ready(self):
        snap = NAMED_PLANS["ci-smoke"].snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["name"] == "ci-smoke"
        assert {s["site"] for s in snap["specs"]} <= set(KNOWN_SITES)

    def test_should_crash_window(self):
        plan = plan_of("fleet.worker.crash", max_fires=1, skip=1)
        assert not plan.should_crash(7, 0)   # inside skip window
        assert plan.should_crash(7, 1)       # the one budgeted fire
        assert not plan.should_crash(7, 2)   # budget exhausted

    def test_should_crash_rate_deterministic(self):
        plan = plan_of("fleet.worker.crash", rate=0.5)
        draws = [plan.should_crash(seed, 0) for seed in range(64)]
        assert draws == [plan.should_crash(seed, 0) for seed in range(64)]
        assert any(draws) and not all(draws)


class TestInjector:
    def test_install_arms_and_uninstall_disarms(self):
        plan = plan_of("mm.migrate.pin")
        with injecting(plan, seed=3) as faults:
            assert faults is FAULTS
            assert FAULTS.plan is plan
            assert fault_site("mm.migrate.pin").armed
        assert FAULTS.plan is None
        assert not fault_site("mm.migrate.pin").armed

    def test_injecting_none_is_passthrough(self):
        with injecting(None) as faults:
            assert faults is FAULTS
            assert FAULTS.plan is None

    def test_rate_draws_deterministic_per_seed(self):
        def pattern(seed: int) -> list[bool]:
            with injecting(plan_of("mm.migrate.pin", rate=0.3), seed=seed):
                site = fault_site("mm.migrate.pin")
                return [site.fire() for _ in range(32)]

        assert pattern(1) == pattern(1)
        assert pattern(1) != pattern(2)

    def test_fire_counts_nonzero_only(self):
        plan = FaultPlan("two", (FaultSpec("mm.migrate.pin", max_fires=2),
                                 FaultSpec("mm.migrate.busy", rate=0.0)))
        with injecting(plan, seed=0) as faults:
            site = fault_site("mm.migrate.pin")
            site.fire()
            site.fire()
            fault_site("mm.migrate.busy").fire()
            assert faults.fire_counts() == {"fault.mm.migrate.pin": 2}


class TestDisabledOverheadContract:
    """No plan installed => hooks cost one attribute load + one branch
    (the same contract as tracepoints)."""

    def test_sites_default_disarmed(self):
        for name in KNOWN_SITES:
            assert fault_site(name).armed is False

    def test_armed_is_a_plain_slot_attribute(self):
        assert "armed" in FaultSite.__slots__
        assert not isinstance(vars(FaultSite).get("armed"), property)

    def test_disarmed_hot_paths_never_call_fire(self, monkeypatch):
        """With every site disarmed, `site.armed and site.fire(...)`
        must short-circuit: poison fire() and run a real workload."""
        def boom(self, **ctx):  # pragma: no cover - contract violation
            raise AssertionError(f"fire() reached while disarmed: {self.name}")

        monkeypatch.setattr(FaultSite, "fire", boom)
        k = make_linux(mem_mib=8)
        handles = [k.alloc_pages(0) for _ in range(64)]
        handles.append(k.alloc_pages(3, source=AllocSource.SLAB))
        for h in handles[::2]:
            k.free_pages(h)
        k.advance()
        k.compactor.compact(k.buddy, k.handles)
        k.check_consistency()


class TestMigrateRetry:
    def test_transient_fault_retried_then_succeeds(self):
        k = make_linux(mem_mib=4)
        h = k.alloc_pages(0)
        with injecting(plan_of("mm.migrate.busy", max_fires=1), seed=0):
            dst = k.buddy.take_free_split(
                k.buddy.free_heads_in(0, k.mem.nframes)[-1], 0)
            migrate_with_retry(k.mem, h.pfn, dst, stat=k.stat)
        assert k.stat[ev.MIGRATE_RETRY] == 1

    def test_persistent_fault_raises_after_budget(self):
        k = make_linux(mem_mib=4)
        h = k.alloc_pages(0)
        with injecting(plan_of("mm.migrate.pin"), seed=0):
            dst = k.buddy.take_free_split(
                k.buddy.free_heads_in(0, k.mem.nframes)[-1], 0)
            with pytest.raises(MigrationError):
                migrate_with_retry(k.mem, h.pfn, dst, stat=k.stat)
        # One retry per failed attempt beyond the first.
        assert k.stat[ev.MIGRATE_RETRY] == MIGRATE_MAX_ATTEMPTS
        # Source page untouched: still allocated at its original head.
        assert k.mem.alloc_order[h.pfn] == 0

    def test_compaction_survives_transient_failures(self):
        k = make_linux(mem_mib=8)
        pages = [k.alloc_pages(0) for _ in range(k.mem.nframes)]
        for i, h in enumerate(pages):
            if i % 2 == 0:
                k.free_pages(h)
        with injecting(plan_of("mm.migrate.busy", rate=0.3), seed=5):
            result = k.compactor.compact(k.buddy, k.handles)
        assert result.pages_failed_transient > 0
        assert result.pages_migrated > 0
        k.check_consistency()


class TestWatermarkRescue:
    def test_transient_watermark_failure_recovers_in_slow_path(self):
        k = make_linux(mem_mib=4)
        with injecting(plan_of("mm.buddy.watermark", max_fires=1), seed=0):
            h = k.alloc_pages(3)
        assert h.nframes == 8
        assert k.stat[ev.ALLOC_FAIL] >= 1

    def test_oom_rescue_after_slow_path_exhausted(self):
        """Four fires cover the fast path and every slow-path retry; the
        rescue's escalated attempt is the fifth and saves the run."""
        k = make_linux(mem_mib=4)
        with injecting(plan_of("mm.buddy.watermark", max_fires=4), seed=0):
            h = k.alloc_pages(3)
        assert h.nframes == 8
        assert k.stat[ev.OOM_RESCUE] == 1

    def test_unbounded_watermark_failure_is_typed_oom(self):
        k = make_linux(mem_mib=4)
        with injecting(plan_of("mm.buddy.watermark"), seed=0):
            with pytest.raises(OutOfMemoryError):
                k.alloc_pages(3)

    def test_rescue_inactive_without_armed_site(self):
        """Genuine OOM behaviour is untouched when no watermark fault is
        armed: full exhaustion still raises, with no rescue counted."""
        k = make_linux(mem_mib=4)
        keep = []
        with pytest.raises(OutOfMemoryError):
            while True:
                keep.append(k.alloc_pages(0))
        assert k.stat[ev.OOM_RESCUE] == 0


class TestMemoryFailure:
    def test_free_frame_hard_offlined(self):
        k = make_linux(mem_mib=4)
        victim = 17
        assert k.memory_failure(victim)
        assert k.mem.is_poisoned(victim)
        assert k.offlined_frames() == 1
        assert k.stat[ev.MEMORY_FAILURE_OFFLINED] == 1
        k.check_consistency()
        # The dead frame is never handed out again.
        keep = []
        try:
            while True:
                keep.append(k.alloc_pages(0))
        except OutOfMemoryError:
            pass
        assert all(h.pfn != victim for h in keep)

    def test_movable_page_migrated_then_offlined(self):
        k = make_linux(mem_mib=4)
        h = k.alloc_pages(0)
        victim = h.pfn
        assert k.memory_failure(victim)
        assert h.pfn != victim
        assert k.mem.is_poisoned(victim)
        assert k.offlined_frames() == 1
        assert k.stat[ev.MIGRATE_SUCCESS] >= 1
        k.free_pages(h)
        k.check_consistency()

    def test_pinned_page_fatal_then_deferred_offline(self):
        k = make_linux(mem_mib=4)
        h = k.alloc_pages(0, source=AllocSource.USER)
        k.pin_pages(h)
        victim = h.pfn
        assert not k.memory_failure(victim)   # fatal in place
        assert k.stat[ev.MEMORY_FAILURE_FATAL] == 1
        assert k.mem.is_poisoned(victim)
        assert k.offlined_frames() == 0       # still owned by the pin
        k.unpin_pages(h)
        k.free_pages(h)                        # deferred offline fires here
        assert k.offlined_frames() == 1
        assert k.mem.is_poisoned(victim)
        k.check_consistency()

    def test_double_failure_is_idempotent(self):
        k = make_linux(mem_mib=4)
        assert k.memory_failure(9)
        assert k.memory_failure(9)
        assert k.offlined_frames() == 1
        assert k.stat[ev.MEMORY_FAILURE] == 2

    def test_contiguity_scan_accounts_for_hole(self):
        from repro.analysis.contiguity import free_block_count

        k = make_linux(mem_mib=4)
        before = free_block_count(k.mem, PAGEBLOCK_FRAMES)
        assert k.memory_failure(PAGEBLOCK_FRAMES + 3)
        after = free_block_count(k.mem, PAGEBLOCK_FRAMES)
        assert after == before - 1
        assert k.mem.free_frames() == k.mem.nframes - 1

    def test_contiguitas_region_routes_around_hole(self):
        k = make_contiguitas(mem_mib=64)
        victim = 5  # movable region starts at frame 0
        assert k.memory_failure(victim)
        assert k.layout.offlined_movable == 1
        assert k.layout.offlined_unmovable == 0
        assert (k.layout.effective_movable_frames
                == k.layout.movable_frames - 1)
        k.check_consistency()

    def test_uce_plan_offlines_over_time(self):
        k = make_linux(mem_mib=16)
        with injecting(NAMED_PLANS["uce"], seed=7) as faults:
            for _ in range(200):
                k.advance()
            fires = faults.fire_counts().get("fault.mm.memory.uce", 0)
        assert fires > 0
        assert k.offlined_frames() == fires
        k.check_consistency()


SMALL = dict(mem_bytes=MiB(64), min_uptime_steps=20, max_uptime_steps=60)


class TestChaosFleet:
    def test_same_seed_same_plan_bit_identical_manifests(self, tmp_path):
        from repro.telemetry import TelemetryConfig

        def manifest(path):
            cfg = ServerConfig(**SMALL, fault_plan=NAMED_PLANS["ci-smoke"])
            sample = run_fleet(FleetConfig(
                n_servers=4, server=cfg, base_seed=3, workers=2,
                backoff_base=0.0,
                telemetry=TelemetryConfig(manifest_path=str(path))))
            return sample.manifest

        a = deterministic_view(manifest(tmp_path / "a.json"))
        b = deterministic_view(manifest(tmp_path / "b.json"))
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_chaos_run_complete_with_zero_drops(self):
        cfg = ServerConfig(**SMALL, fault_plan=NAMED_PLANS["ci-smoke"])
        sample = run_fleet(FleetConfig(n_servers=4, server=cfg, base_seed=3,
                                       workers=2, backoff_base=0.0))
        assert len(sample.scans) == 4
        assert sample.failed_indices() == []
        totals = sample.vmstat_totals()
        assert totals["fault.mm.buddy.watermark"] > 0
        assert totals["oom_rescue"] > 0

    def test_crash_only_chaos_matches_clean_manifest_counters(self):
        clean = run_fleet(FleetConfig(n_servers=3,
                                      server=ServerConfig(**SMALL),
                                      base_seed=11, workers=1))
        cfg = ServerConfig(**SMALL, fault_plan=NAMED_PLANS["crash-only"])
        chaotic = run_fleet(FleetConfig(n_servers=3, server=cfg,
                                        base_seed=11, workers=1,
                                        backoff_base=0.0))
        assert chaotic.scans == clean.scans

    def test_manifest_config_records_plan(self):
        from repro.fleet.sampler import _manifest_config

        cfg = ServerConfig(**SMALL, fault_plan=NAMED_PLANS["crash-only"])
        rec = _manifest_config(3, cfg, 0)
        assert rec["fault_plan"]["name"] == "crash-only"
        assert _manifest_config(3, ServerConfig(**SMALL), 0)[
            "fault_plan"] is None
