"""Event queue, caches, and the slice hash."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    ArchParams,
    DEFAULT_PARAMS,
    EventQueue,
    SetAssocCache,
    SlicedLLC,
    slice_of,
)


class TestEventQueue:
    def test_runs_in_time_order(self):
        q = EventQueue()
        out = []
        q.at(10, lambda: out.append("b"))
        q.at(5, lambda: out.append("a"))
        q.at(20, lambda: out.append("c"))
        q.run()
        assert out == ["a", "b", "c"]
        assert q.now == 20

    def test_fifo_for_same_cycle(self):
        q = EventQueue()
        out = []
        q.at(5, lambda: out.append(1))
        q.at(5, lambda: out.append(2))
        q.run()
        assert out == [1, 2]

    def test_after_is_relative(self):
        q = EventQueue()
        q.at(100, lambda: q.after(50, lambda: None))
        q.run()
        assert q.now == 150

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.at(10, lambda: None)
        q.run()
        with pytest.raises(ConfigurationError):
            q.at(5, lambda: None)

    def test_run_until_stops_clock(self):
        q = EventQueue()
        fired = []
        q.at(10, lambda: fired.append(1))
        q.at(100, lambda: fired.append(2))
        q.run(until=50)
        assert fired == [1]
        assert q.now == 50
        assert len(q) == 1


class TestSetAssocCache:
    def test_hit_after_fill(self):
        c = SetAssocCache(64 * 64, ways=4)  # 64 lines, 16 sets
        assert not c.access(5)
        assert c.access(5)
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction_within_set(self):
        c = SetAssocCache(4 * 64, ways=4)  # one set of 4 ways
        for line in range(4):
            c.access(line * c.nsets)  # all map to set 0
        c.access(0)  # refresh line 0
        c.access(4 * c.nsets)  # evicts LRU = line 1*nsets
        assert c.contains(0)
        assert not c.contains(1 * c.nsets)

    def test_invalidate(self):
        c = SetAssocCache(64 * 64, ways=4)
        c.access(9)
        assert c.invalidate(9)
        assert not c.invalidate(9)
        assert not c.contains(9)

    def test_invalidate_page(self):
        c = SetAssocCache(256 * 1024, ways=8)
        base = 7 * 64
        for i in range(64):
            c.access(base + i)
        assert c.invalidate_page(7) == 64

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssocCache(100, ways=3)


class TestSlicedLLC:
    def test_hash_spreads_page_lines(self):
        """Consecutive lines of one page should span several slices."""
        slices = {slice_of(1000 * 64 + i, 8) for i in range(64)}
        assert len(slices) >= 4

    def test_hash_is_stable(self):
        assert slice_of(12345, 8) == slice_of(12345, 8)

    def test_ring_distance_wraps(self):
        llc = SlicedLLC(DEFAULT_PARAMS)
        assert llc.ring_distance(0, 7) == 1  # around the ring
        assert llc.ring_distance(0, 4) == 4
        assert llc.ring_distance(3, 3) == 0

    def test_cross_slice_write_cost(self):
        llc = SlicedLLC(DEFAULT_PARAMS)
        same = llc.cross_slice_write_cycles(2, 2)
        far = llc.cross_slice_write_cycles(0, 4)
        assert same == 0
        assert far == 2 * 4 * DEFAULT_PARAMS.ring_hop_cycles

    def test_access_routes_to_home_slice(self):
        llc = SlicedLLC(DEFAULT_PARAMS)
        hit, idx = llc.access(777)
        assert not hit
        assert idx == llc.home_slice(777)
        hit2, idx2 = llc.access(777)
        assert hit2 and idx2 == idx


class TestArchParams:
    def test_defaults_match_table1(self):
        p = DEFAULT_PARAMS
        assert p.cores == 8
        assert p.l1_tlb_entries == 64
        assert p.l2_tlb_entries == 1536
        assert p.l2_tlb_ways == 16
        assert p.l3_slice_size == 2 * 1024 * 1024
        assert p.hw_table_entries == 16
        assert p.freq_ghz == 2.0
        assert p.invlpg_cycles == 250

    def test_cycles_to_us(self):
        assert DEFAULT_PARAMS.cycles_to_us(2000) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ArchParams(cores=0)
