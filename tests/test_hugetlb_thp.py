"""HugeTLB pools and khugepaged collapse."""

import pytest

from repro.errors import ConfigurationError, ContiguityError
from repro.mm import HugeTLBPool, Khugepaged, MigrateType
from repro.mm import vmstat as ev
from repro.units import GIGAPAGE_FRAMES, PAGEBLOCK_FRAMES

from conftest import make_contiguitas, make_linux


class TestHugeTLBPool:
    def test_reserve_2m(self, linux):
        pool = HugeTLBPool(linux)
        assert pool.reserve_2m(3) == 3
        assert pool.stats.nr_2m == 3
        assert pool.stats.free_2m == 3

    def test_get_and_put_2m(self, linux):
        pool = HugeTLBPool(linux)
        pool.reserve_2m(1)
        page = pool.get_page(PAGEBLOCK_FRAMES)
        assert page.nframes == PAGEBLOCK_FRAMES
        assert pool.stats.free_2m == 0
        pool.put_page(page)
        assert pool.stats.free_2m == 1

    def test_pool_is_persistent(self, linux):
        """put_page returns to the pool, not the buddy allocator."""
        pool = HugeTLBPool(linux)
        pool.reserve_2m(1)
        free_with_pool = linux.free_frames()
        page = pool.get_page(PAGEBLOCK_FRAMES)
        pool.put_page(page)
        assert linux.free_frames() == free_with_pool

    def test_empty_pool_raises(self, linux):
        pool = HugeTLBPool(linux)
        with pytest.raises(ContiguityError):
            pool.get_page(PAGEBLOCK_FRAMES)

    def test_foreign_page_rejected(self, linux):
        pool = HugeTLBPool(linux)
        handle = linux.alloc_pages(9)
        with pytest.raises(ConfigurationError):
            pool.put_page(handle)

    def test_bad_size_rejected(self, linux):
        pool = HugeTLBPool(linux)
        with pytest.raises(ConfigurationError):
            pool.get_page(123)

    def test_release_free_pages(self, linux):
        pool = HugeTLBPool(linux)
        pool.reserve_2m(2)
        released = pool.release_free_pages()
        assert released == 2 * PAGEBLOCK_FRAMES
        assert pool.stats.nr_2m == 0
        assert linux.free_frames() == linux.mem.nframes

    def test_reserve_1g_fails_on_small_machine(self, linux):
        pool = HugeTLBPool(linux)
        assert pool.reserve_1g(1) == 0
        assert pool.stats.reserve_failures_1g == 1

    def test_reserve_1g_succeeds_with_room(self):
        k = make_linux(mem_mib=1026)
        pool = HugeTLBPool(k)
        assert pool.reserve_1g(1) == 1
        page = pool.get_page(GIGAPAGE_FRAMES)
        assert page.nframes == GIGAPAGE_FRAMES

    def test_reserve_counts_partial_success(self, linux):
        # 32 MiB machine: at most 16 huge pages fit.
        pool = HugeTLBPool(linux)
        got = pool.reserve_2m(100)
        assert 0 < got < 100
        assert pool.stats.reserve_failures_2m == 1


class TestKhugepaged:
    def test_collapse_promotes_region(self, linux):
        kh = Khugepaged(linux)
        pages = [linux.alloc_pages(0) for _ in range(PAGEBLOCK_FRAMES)]
        huge = kh.collapse(pages)
        assert huge is not None
        assert huge.order == 9
        assert all(p.freed for p in pages)
        assert linux.stat[ev.THP_PROMOTED] == 1

    def test_collapse_requires_full_region(self, linux):
        kh = Khugepaged(linux)
        with pytest.raises(ValueError):
            kh.collapse([linux.alloc_pages(0)])

    def test_collapse_rejects_pinned(self, linux):
        kh = Khugepaged(linux)
        pages = [linux.alloc_pages(0) for _ in range(PAGEBLOCK_FRAMES)]
        linux.pin_pages(pages[17])
        assert kh.collapse(pages) is None
        assert not pages[0].freed  # nothing was freed

    def test_scan_replaces_regions_in_place(self, linux):
        kh = Khugepaged(linux, max_collapses_per_pass=1)
        regions = [
            [linux.alloc_pages(0) for _ in range(PAGEBLOCK_FRAMES)]
            for _ in range(2)
        ]
        result = kh.scan(regions)
        assert result.collapsed == 1  # budget respected
        assert len(regions[0]) == 1
        assert regions[0][0].order == 9
        assert len(regions[1]) == PAGEBLOCK_FRAMES

    def test_scan_skips_huge_regions(self, linux):
        kh = Khugepaged(linux)
        huge = linux.alloc_thp()
        result = kh.scan([[huge]])
        assert result.scanned == 0
        assert result.collapsed == 0

    def test_collapse_on_contiguitas_after_fragmentation(self):
        """Integration: khugepaged can promote on Contiguitas even after
        the full-fragmentation process, because contiguity survives."""
        from repro.workloads import fragment_fully

        k = make_contiguitas(mem_mib=64)
        fragment_fully(k)
        kh = Khugepaged(k)
        pages = [k.alloc_pages(0) for _ in range(PAGEBLOCK_FRAMES)]
        assert kh.collapse(pages) is not None
