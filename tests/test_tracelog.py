"""Allocation-trace record and replay."""

import io
import random

import pytest

from repro.analysis import unmovable_block_fraction
from repro.errors import ConfigurationError, ReproError
from repro.mm import AllocSource
from repro.units import PAGEBLOCK_FRAMES
from repro.workloads.tracelog import (
    TraceEvent,
    TraceRecorder,
    load_trace,
    replay,
)

from conftest import make_contiguitas, make_linux


def record_churn(steps=800, seed=5, mem_mib=32, free_probability=0.45):
    """Record a mixed churn trace on a Linux kernel."""
    rng = random.Random(seed)
    recorder = TraceRecorder(make_linux(mem_mib))
    live = []
    for step in range(steps):
        if live and rng.random() < free_probability:
            handle = live.pop(rng.randrange(len(live)))
            recorder.free_pages(handle)
        else:
            roll = rng.random()
            if roll < 0.2:
                handle = recorder.alloc_pages(
                    0, source=AllocSource.NETWORKING)
            elif roll < 0.25:
                handle = recorder.alloc_pages(0)
                recorder.pin_pages(handle)
                recorder.unpin_pages(handle)
            else:
                handle = recorder.alloc_pages(0, reclaimable=(roll > 0.8))
            live.append(handle)
        if step % 100 == 0:
            recorder.advance(1000)
    return recorder


class TestRecording:
    def test_events_captured(self):
        recorder = record_churn(steps=100)
        ops = {e.op for e in recorder.events}
        assert {"alloc", "free", "advance"} <= ops
        assert len(recorder.events) >= 100

    def test_delegation_preserves_kernel_behaviour(self):
        recorder = record_churn(steps=100)
        recorder.kernel.check_consistency()
        assert recorder.free_frames() == recorder.kernel.free_frames()

    def test_foreign_handle_rejected(self):
        recorder = TraceRecorder(make_linux())
        foreign = recorder.kernel.alloc_pages(0)  # bypassed the recorder
        with pytest.raises(ReproError):
            recorder.free_pages(foreign)


class TestSerialisation:
    def test_save_load_roundtrip(self):
        recorder = record_churn(steps=150)
        buf = io.StringIO()
        n = recorder.save(buf)
        buf.seek(0)
        events = load_trace(buf)
        assert len(events) == n
        assert [e.op for e in events] == \
            [e.op for e in recorder.events]

    def test_version_check(self):
        buf = io.StringIO('{"version": 99, "events": 0}\n')
        with pytest.raises(ConfigurationError):
            load_trace(buf)


class TestReplay:
    def test_replay_reproduces_state_on_same_kernel_type(self):
        recorder = record_churn(steps=600, seed=9)
        original = recorder.kernel
        target = make_linux(32)
        result = replay(recorder.events, target)
        assert result.alloc_failures == 0
        # Same kernel type + same trace => identical physical outcome.
        assert target.free_frames() == original.free_frames()
        assert (target.mem.unmovable_mask()
                == original.mem.unmovable_mask()).all()
        target.check_consistency()

    def test_replay_across_kernel_types(self):
        """The scientific use: one recorded trace, two kernels — the
        Contiguitas replay confines what the Linux original scattered."""
        recorder = record_churn(steps=1200, seed=11)
        cont = make_contiguitas(32)
        result = replay(recorder.events, cont)
        assert result.alloc_failures == 0
        assert cont.confinement_violations() == 0
        linux_scatter = unmovable_block_fraction(
            recorder.kernel.mem, PAGEBLOCK_FRAMES)
        cont_scatter = unmovable_block_fraction(cont.mem, PAGEBLOCK_FRAMES)
        assert cont_scatter <= linux_scatter
        cont.check_consistency()

    def test_replay_tolerates_oom_on_smaller_machine(self):
        recorder = record_churn(steps=3000, seed=3, mem_mib=32,
                                free_probability=0.3)
        tiny = make_linux(2)
        result = replay(recorder.events, tiny)
        assert result.alloc_failures > 0
        tiny.check_consistency()

    def test_replay_strict_mode_raises(self):
        from repro.errors import OutOfMemoryError

        recorder = record_churn(steps=3000, seed=3, mem_mib=32,
                                free_probability=0.3)
        with pytest.raises(OutOfMemoryError):
            replay(recorder.events, make_linux(2), tolerate_oom=False)

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            replay([TraceEvent(op="alloc", obj=0),
                    TraceEvent(op="explode", obj=0)], make_linux(8))
