"""Workload driver internals: diurnal traffic, stragglers, buffer orders,
restart residue."""

import dataclasses

import pytest

from repro.mm import vmstat as ev
from repro.units import PAGEBLOCK_FRAMES
from repro.workloads import Workload
from repro.workloads.services import CACHE_B

from conftest import make_linux


def spec_with(**kwargs):
    return dataclasses.replace(CACHE_B, **kwargs)


class TestDiurnalTraffic:
    def test_traffic_factor_oscillates(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, spec_with(diurnal_amplitude=0.5,
                                  diurnal_period_steps=40), seed=0)
        w.start()
        factors = []
        for _ in range(40):
            w.step()
            factors.append(w._traffic)
        assert max(factors) > 1.3
        assert min(factors) < 0.7

    def test_zero_amplitude_is_flat(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, spec_with(diurnal_amplitude=0.0), seed=0)
        w.start()
        for _ in range(10):
            w.step()
            assert w._traffic == 1.0


class TestBufferOrders:
    def test_mixed_orders_allocated(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, spec_with(net_buffer_orders=(0, 2)), seed=1)
        w.start()
        for _ in range(60):
            w.step()
        orders = {b.order for b in w.netpool.transient}
        assert orders >= {0, 2}

    def test_single_order_respected(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, spec_with(net_buffer_orders=(1,)), seed=1)
        w.start()
        for _ in range(40):
            w.step()
        assert {b.order for b in w.netpool.transient} == {1}


class TestStragglers:
    def test_stragglers_outlive_transients(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, spec_with(net_lifetime_steps=5.0,
                                  net_straggler_fraction=0.5,
                                  net_straggler_lifetime_steps=10_000.0),
                     seed=1)
        w.start()
        for _ in range(200):
            w.step()
        # With transients dying at ~5 steps, the survivors are stragglers:
        # roughly rate * straggler_fraction * elapsed of them.
        live = len(w.netpool.transient)
        assert live > 50


class TestRestartResidue:
    def _run_and_stop(self, residue, keep_cache):
        k = make_linux(mem_mib=64)
        w = Workload(k, CACHE_B, seed=3)
        w.start()
        for _ in range(150):
            w.step()
        w.stop(kernel_residue=residue, keep_cache=keep_cache)
        return k

    def test_zero_residue_and_dropped_cache_frees_most(self):
        k = self._run_and_stop(residue=0.0, keep_cache=False)
        # Only the persistent rings are gone too (tear_down): almost all
        # memory returns.
        assert k.free_frames() > 0.9 * k.mem.nframes

    def test_residue_leaks_unmovable(self):
        clean = self._run_and_stop(residue=0.0, keep_cache=False)
        dirty = self._run_and_stop(residue=0.9, keep_cache=False)
        assert int(dirty.mem.unmovable_mask().sum()) > \
            int(clean.mem.unmovable_mask().sum())

    def test_kept_cache_stays_reclaimable(self):
        k = self._run_and_stop(residue=0.0, keep_cache=True)
        before = k.free_frames()
        assert len(k.reclaim_lru) > 0
        # A fresh demand can still evict it.
        freed = k.reclaim_lru.reclaim(k.free_pages, 1000)
        assert freed >= 1000
        assert k.free_frames() > before

    def test_pins_never_leak(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, spec_with(pin_rate_per_gib=20.0,
                                  pin_lifetime_steps=10_000.0), seed=3)
        w.start()
        for _ in range(100):
            w.step()
        assert int(k.mem.pinned_mask().sum()) > 0
        w.stop(kernel_residue=1.0)
        # Process exit unpins everything, even at full kernel residue.
        assert int(k.mem.pinned_mask().sum()) == 0
