"""simlint: every rule gets a clean, a violating, and a suppressed case.

Fixtures are inline source strings; subsystem-scoped rules (SL001,
SL006) are exercised by giving :func:`lint_source` a *path* inside and
outside the scoped directories — the engine scopes on directory
components, not file contents.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.simlint import (
    DEFAULT_RULES,
    DEPRECATED_APIS,
    Finding,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    rule_catalogue,
)

MM_PATH = "src/repro/mm/fixture.py"
FLEET_PATH = "src/repro/fleet/fixture.py"
NEUTRAL_PATH = "src/repro/analysis/fixture.py"


def rules_of(source: str, path: str = NEUTRAL_PATH) -> set[str]:
    return {f.rule for f in lint_source(textwrap.dedent(source), path)}


def findings_for(source: str, path: str = NEUTRAL_PATH) -> list[Finding]:
    return lint_source(textwrap.dedent(source), path)


class TestWallClockSL001:
    def test_flags_wall_clock_in_sim_subsystem(self):
        src = """
            import time

            def stamp():
                return time.time()
        """
        found = findings_for(src, MM_PATH)
        assert [f.rule for f in found] == ["SL001"]
        assert "time.time" in found[0].message

    def test_flags_aliased_and_from_imports(self):
        src = """
            from datetime import datetime
            import time as t

            def stamp():
                return datetime.now(), t.monotonic()
        """
        found = findings_for(src, FLEET_PATH)
        assert [f.rule for f in found] == ["SL001", "SL001"]

    def test_perf_counter_exempt(self):
        src = """
            import time

            def duration():
                return time.perf_counter()
        """
        assert "SL001" not in rules_of(src, FLEET_PATH)

    def test_outside_sim_subsystems_allowed(self):
        src = """
            import time

            def stamp():
                return time.time()
        """
        assert "SL001" not in rules_of(src, "src/repro/telemetry/manifest.py")


class TestSeededRandomSL002:
    def test_flags_unseeded_random(self):
        src = """
            import random

            def jitter():
                return random.random()
        """
        assert "SL002" in rules_of(src)

    def test_flags_unseeded_random_instance(self):
        src = """
            import random

            def make_rng():
                return random.Random()
        """
        assert "SL002" in rules_of(src)

    def test_seeded_instance_in_function_clean(self):
        src = """
            import random

            def make_rng(seed):
                return random.Random(seed)
        """
        assert "SL002" not in rules_of(src)

    def test_module_level_seeded_instance_flagged(self):
        src = """
            import random

            RNG = random.Random(1234)
        """
        assert "SL002" in rules_of(src)

    def test_from_import_unseeded_flagged(self):
        src = """
            from random import Random

            def make_rng():
                return Random()
        """
        assert "SL002" in rules_of(src)

    def test_from_import_as_alias_unseeded_flagged(self):
        src = """
            from random import Random as R

            def make_rng():
                return R()
        """
        assert "SL002" in rules_of(src)

    def test_assignment_factory_alias_unseeded_flagged(self):
        src = """
            import random

            _factory = random.Random

            def make_rng():
                return _factory()
        """
        assert "SL002" in rules_of(src)

    def test_assignment_factory_alias_of_from_import_flagged(self):
        src = """
            from random import Random

            _factory = Random

            def make_rng():
                return _factory()
        """
        assert "SL002" in rules_of(src)

    def test_assignment_factory_alias_seeded_in_function_clean(self):
        src = """
            import random

            _factory = random.Random

            def make_rng(seed):
                return _factory(f"site:purpose:{seed}")
        """
        assert "SL002" not in rules_of(src)


class TestTracepointGuardSL003:
    def test_unguarded_emit_with_kwargs_flagged(self):
        src = """
            from repro.telemetry import tracepoint

            tp_alloc = tracepoint("mm.buddy.alloc")

            def alloc(pfn):
                tp_alloc.emit(pfn=pfn)
        """
        found = findings_for(src)
        assert [f.rule for f in found] == ["SL003"]
        assert "enabled" in found[0].message

    def test_guarded_emit_clean(self):
        src = """
            from repro.telemetry import tracepoint

            tp_alloc = tracepoint("mm.buddy.alloc")

            def alloc(pfn):
                if tp_alloc.enabled:
                    tp_alloc.emit(pfn=pfn)
        """
        assert "SL003" not in rules_of(src)

    def test_argless_emit_clean(self):
        # No kwargs built on the disabled path -> no overhead to guard.
        src = """
            from repro.telemetry import tracepoint

            tp_tick = tracepoint("sim.tick")

            def tick():
                tp_tick.emit()
        """
        assert "SL003" not in rules_of(src)


class TestBareAssertSL004:
    def test_flags_assert_in_non_test_code(self):
        src = """
            def merge(order):
                assert order >= 0, "invariant"
        """
        assert "SL004" in rules_of(src, MM_PATH)

    def test_test_files_exempt(self):
        src = """
            def test_merge():
                assert 1 + 1 == 2
        """
        assert "SL004" not in rules_of(src, "tests/test_fixture.py")
        assert "SL004" not in rules_of(src, "src/repro/test_inline.py")


class TestMutableDefaultSL005:
    def test_flags_literal_and_constructor_defaults(self):
        src = """
            def f(xs=[], mapping=dict(), *, seen=set()):
                return xs, mapping, seen
        """
        found = findings_for(src)
        assert [f.rule for f in found] == ["SL005", "SL005", "SL005"]

    def test_none_sentinel_clean(self):
        src = """
            def f(xs=None, n=3, name="x"):
                return xs or []
        """
        assert "SL005" not in rules_of(src)


class TestDeterministicIterationSL006:
    def test_flags_set_iteration_in_fleet(self):
        src = """
            def report(scans):
                names = {s.name for s in scans}
                return [n for n in names]
        """
        assert "SL006" in rules_of(src, FLEET_PATH)

    def test_sorted_iteration_clean(self):
        src = """
            def report(scans):
                names = {s.name for s in scans}
                return [n for n in sorted(names)]
        """
        assert "SL006" not in rules_of(src, FLEET_PATH)

    def test_outside_ordered_subsystems_allowed(self):
        src = """
            def report(scans):
                names = {s.name for s in scans}
                return [n for n in names]
        """
        assert "SL006" not in rules_of(src, MM_PATH)


class TestDeprecatedApiSL007:
    def test_flags_each_deprecated_accessor(self):
        src = """
            def legacy(sample):
                return (sample.contiguity_values("2MB"),
                        sample.unmovable_values("2MB"))
        """
        found = findings_for(src)
        assert [f.rule for f in found] == ["SL007", "SL007"]
        for f in found:
            assert "series(" in f.message

    def test_replacement_api_clean(self):
        src = """
            def modern(sample):
                return sample.series("contiguity", "2MB")
        """
        assert "SL007" not in rules_of(src)

    def test_catalogue_matches_rule(self):
        assert set(DEPRECATED_APIS) == {"contiguity_values",
                                        "unmovable_values"}


class TestBoundedRetrySL008:
    def test_flags_unbounded_sleep_retry(self):
        src = """
            import time

            def fetch(conn):
                while True:
                    try:
                        return conn.read()
                    except OSError:
                        time.sleep(0.1)
                        continue
        """
        found = findings_for(src)
        assert [f.rule for f in found] == ["SL008"]
        assert "attempt counter" in found[0].message

    def test_flags_retry_marker_names(self):
        src = """
            def fetch(conn, backoff):
                while True:
                    if conn.poll(backoff):
                        return conn.read()
        """
        assert "SL008" in rules_of(src)

    def test_bounded_by_attempt_counter_clean(self):
        src = """
            def fetch(conn, max_attempts=3):
                attempt = 0
                while True:
                    attempt += 1
                    try:
                        return conn.read()
                    except OSError:
                        if attempt >= max_attempts:
                            raise
                        continue
        """
        assert "SL008" not in rules_of(src)

    def test_plain_event_loop_clean(self):
        src = """
            def pump(queue):
                while True:
                    item = queue.get()
                    if item is None:
                        return
                    item.run()
        """
        assert "SL008" not in rules_of(src)

    def test_bounded_for_loop_clean(self):
        src = """
            def fetch(conn, max_retries=2):
                for attempt in range(max_retries + 1):
                    try:
                        return conn.read()
                    except OSError:
                        continue
        """
        assert "SL008" not in rules_of(src)

    def test_test_files_exempt(self):
        src = """
            import time

            def drive(conn):
                while True:
                    try:
                        return conn.read()
                    except OSError:
                        time.sleep(0.01)
                        continue
        """
        assert "SL008" not in rules_of(src, "tests/test_fixture.py")

    def test_disable_comment(self):
        src = """
            import time

            def watch(conn):
                while True:  # simlint: disable=SL008
                    try:
                        return conn.read()
                    except OSError:
                        time.sleep(0.1)
                        continue
        """
        assert "SL008" not in rules_of(src)


class TestPerFrameObjectSL009:
    def test_flags_handle_construction_in_pfn_loop(self):
        src = """
            def handles(pfns, mt, src, now):
                out = []
                for pfn in pfns:
                    out.append(PageHandle(pfn, 0, mt, src, now, False))
                return out
        """
        found = findings_for(src, MM_PATH)
        assert [f.rule for f in found] == ["SL009"]
        assert "PageHandle" in found[0].message

    def test_flags_enum_construction_in_comprehension(self):
        src = """
            def types(mem, heads):
                return [MigrateType(mem.free_mt[head]) for head in heads]
        """
        assert "SL009" in rules_of(src, MM_PATH)

    def test_packed_array_reads_clean(self):
        src = """
            def orders(mem, pfns):
                out = []
                for pfn in pfns:
                    out.append(mem.free_order_mv[pfn])
                return out
        """
        assert "SL009" not in rules_of(src, MM_PATH)

    def test_non_frame_loop_clean(self):
        src = """
            def build(rows):
                return [PageHandle(*row) for row in rows]
        """
        assert "SL009" not in rules_of(src, MM_PATH)

    def test_outside_mm_clean(self):
        src = """
            def handles(pfns):
                return [PageHandle(pfn) for pfn in pfns]
        """
        assert "SL009" not in rules_of(src, FLEET_PATH)

    def test_disable_comment_honoured(self):
        src = """
            def handles(pfns):
                return [
                    PageHandle(pfn)  # simlint: disable=SL009
                    for pfn in pfns
                ]
        """
        assert "SL009" not in rules_of(src, MM_PATH)


TELEMETRY_PATH = "src/repro/telemetry/fixture.py"
CHECKPOINT_PATH = "src/repro/checkpoint/fixture.py"


class TestAtomicDurableWriteSL010:
    BARE_WRITE = """
        def save(path, data):
            with open(path, "w") as fh:
                fh.write(data)
    """

    def test_flags_bare_write_in_durable_subsystems(self):
        for path in (TELEMETRY_PATH, CHECKPOINT_PATH,
                     "src/repro/experiments/fixture.py"):
            found = findings_for(self.BARE_WRITE, path)
            assert [f.rule for f in found] == ["SL010"], path
            assert "os.replace" in found[0].message

    def test_ignores_non_durable_subsystems(self):
        assert "SL010" not in rules_of(self.BARE_WRITE, MM_PATH)
        assert "SL010" not in rules_of(self.BARE_WRITE, NEUTRAL_PATH)

    def test_ignores_read_mode_and_nonconstant_mode(self):
        src = """
            def load(path, mode):
                with open(path) as fh:
                    a = fh.read()
                with open(path, "rb") as fh:
                    b = fh.read()
                with open(path, mode) as fh:
                    c = fh.read()
                return a, b, c
        """
        assert "SL010" not in rules_of(src, TELEMETRY_PATH)

    def test_atomic_idiom_passes(self):
        src = """
            import os
            import tempfile

            def save(path, data):
                fd, tmp = tempfile.mkstemp(dir=".")
                with os.fdopen(fd, "w") as fh:
                    fh.write(data)
                os.replace(tmp, path)
        """
        assert "SL010" not in rules_of(src, CHECKPOINT_PATH)

    def test_mode_keyword_and_append_flagged(self):
        src = """
            def log(path, line):
                with open(path, mode="a") as fh:
                    fh.write(line)
        """
        assert "SL010" in rules_of(src, TELEMETRY_PATH)

    def test_disable_comment_for_streaming_sinks(self):
        src = """
            def stream(path):
                return open(path, "w")  # simlint: disable=SL010
        """
        assert "SL010" not in rules_of(src, TELEMETRY_PATH)

    def test_test_files_exempt(self):
        assert "SL010" not in rules_of(
            self.BARE_WRITE, "tests/test_fixture.py")


class TestSuppression:
    VIOLATION = """
        def merge(order):
            assert order >= 0  # simlint: disable=SL004
    """

    def test_line_disable_comment(self):
        assert "SL004" not in rules_of(self.VIOLATION, MM_PATH)

    def test_line_disable_is_per_line(self):
        src = """
            def merge(order):
                assert order >= 0  # simlint: disable=SL004
                assert order < 64
        """
        found = findings_for(src, MM_PATH)
        assert [f.rule for f in found] == ["SL004"]
        assert found[0].line == 4

    def test_file_level_disable(self):
        src = """
            # simlint: disable-file=SL004
            def merge(order):
                assert order >= 0
                assert order < 64
        """
        assert "SL004" not in rules_of(src, MM_PATH)

    def test_disable_all_wildcard(self):
        src = """
            def f(xs=[]):  # simlint: disable=ALL
                return xs
        """
        assert rules_of(src) == set()

    def test_unrelated_code_not_suppressed(self):
        src = """
            def f(xs=[]):  # simlint: disable=SL004
                return xs
        """
        assert "SL005" in rules_of(src)


class TestEngine:
    def test_syntax_error_yields_sl000(self):
        found = lint_source("def broken(:\n", "bad.py")
        assert [f.rule for f in found] == ["SL000"]
        assert "syntax error" in found[0].message

    def test_findings_are_structured_and_sorted(self):
        src = """
            def f(xs=[]):
                assert xs
        """
        found = findings_for(src, MM_PATH)
        assert found == sorted(found)
        for f in found:
            d = f.to_dict()
            assert set(d) == {"path", "line", "col", "rule", "message"}
            assert f.format().startswith(f"{f.path}:{f.line}:")

    def test_render_text_and_json(self):
        found = findings_for("def f(xs=[]):\n    return xs\n")
        text = render_text(found)
        assert "SL005" in text and text.endswith("simlint: 1 finding")
        payload = json.loads(render_json(found))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "SL005"
        assert json.loads(render_json([])) == {"findings": [], "count": 0}

    def test_clean_render(self):
        assert render_text([]) == "simlint: clean"

    def test_rule_catalogue_covers_default_rules(self):
        codes = [code for code, _, _ in rule_catalogue()]
        assert codes == sorted(r.code for r in DEFAULT_RULES)

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "fleet"
        pkg.mkdir()
        (pkg / "bad.py").write_text("def f(xs=[]):\n    return xs\n")
        (pkg / "good.py").write_text("def f(xs=None):\n    return xs\n")
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "stale.py").write_text("def f(xs=[]): pass\n")
        found = lint_paths([tmp_path])
        assert [f.rule for f in found] == ["SL005"]
        assert found[0].path.endswith("bad.py")


class TestShippedTree:
    def test_repro_package_is_clean(self):
        import repro
        import os

        assert lint_paths([os.path.dirname(repro.__file__)]) == []


class TestCli:
    def _violating_file(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("def f(xs=[]):\n    return xs\n")
        return target

    def test_lint_clean_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        clean = tmp_path / "ok.py"
        clean.write_text("def f(xs=None):\n    return xs\n")
        main(["lint", str(clean)])
        assert "simlint: clean" in capsys.readouterr().out

    def test_lint_findings_exit_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        target = self._violating_file(tmp_path)
        with pytest.raises(SystemExit) as exc:
            main(["lint", str(target)])
        assert exc.value.code == 1
        out = capsys.readouterr().out
        assert "SL005" in out and "1 finding" in out

    def test_lint_json_output(self, tmp_path, capsys):
        from repro.cli import main

        target = self._violating_file(tmp_path)
        with pytest.raises(SystemExit):
            main(["lint", "--json", str(target)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "SL005"

    def test_list_rules(self, capsys):
        from repro.cli import main

        main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        for code in ("SL001", "SL004", "SL007"):
            assert code in out
