"""LinuxKernel facade: slow paths, THP, gigapages, pinning."""

import pytest

from repro.errors import ContiguityError, DoubleFreeError, OutOfMemoryError
from repro.mm import AllocSource, KernelConfig, LinuxKernel, MigrateType
from repro.mm import vmstat as ev
from repro.units import GIGAPAGE_FRAMES, MAX_ORDER, MiB, PAGEBLOCK_FRAMES

from conftest import churn, make_linux


def test_alloc_free_roundtrip(linux):
    h = linux.alloc_pages(0)
    assert h.nframes == 1
    linux.free_pages(h)
    assert h.freed
    assert linux.free_frames() == linux.mem.nframes


def test_double_free_raises_typed(linux):
    h = linux.alloc_pages(0)
    linux.free_pages(h)
    with pytest.raises(DoubleFreeError):
        linux.free_pages(h)


def test_default_migratetype_by_source(linux):
    user = linux.alloc_pages(0, source=AllocSource.USER)
    net = linux.alloc_pages(0, source=AllocSource.NETWORKING)
    assert user.migratetype is MigrateType.MOVABLE
    assert net.migratetype is MigrateType.UNMOVABLE


def test_reclaim_rescues_allocation():
    k = make_linux(mem_mib=4)
    # Fill memory completely with reclaimable pages, then ask for more.
    handles = []
    while k.free_frames() > 0:
        handles.append(k.alloc_pages(0, reclaimable=True))
    h = k.alloc_pages(2)  # triggers direct reclaim
    assert h.nframes == 4
    assert k.stat[ev.PAGES_RECLAIMED] > 0


def test_oom_when_nothing_reclaimable():
    k = make_linux(mem_mib=4)
    keep = []
    with pytest.raises(OutOfMemoryError):
        while True:
            keep.append(k.alloc_pages(0))
    assert k.stat[ev.ALLOC_FAIL] > 0


def test_slow_path_compaction_rescues_high_order():
    k = make_linux(mem_mib=8)
    # Checkerboard all of memory so no order-9 block is free anywhere.
    pages = [k.alloc_pages(0) for _ in range(k.mem.nframes)]
    for i, h in enumerate(pages):
        if i % 2 == 0:
            k.free_pages(h)
    assert k.buddy.largest_free_order() < MAX_ORDER
    h = k.alloc_pages(MAX_ORDER)  # compacted on demand
    assert h.nframes == PAGEBLOCK_FRAMES
    assert k.stat[ev.COMPACT_RUNS] >= 1


def test_thp_alloc_success(linux):
    h = linux.alloc_thp()
    assert h is not None
    assert h.order == MAX_ORDER
    assert linux.stat[ev.THP_ALLOC] == 1


def test_thp_disabled_falls_back():
    k = make_linux(thp_enabled=False)
    assert k.alloc_thp() is None
    assert k.stat[ev.THP_FALLBACK] == 1


def test_thp_fallback_when_fragmented():
    k = make_linux(mem_mib=4, compaction_enabled=False)
    # Poison every pageblock with one pinned page, then free the rest:
    # plenty of memory is free but no 2 MiB block can be assembled.
    movable = [k.alloc_pages(0) for _ in range(k.mem.nframes)]
    per_block = {}
    for h in movable:
        per_block.setdefault(k.mem.pageblock_of(h.pfn), h)
    for h in movable:
        if per_block.get(k.mem.pageblock_of(h.pfn)) is not h:
            k.free_pages(h)
    for victim in per_block.values():
        k.pin_pages(victim)
    assert k.alloc_thp() is None
    assert k.stat[ev.THP_FALLBACK] == 1


def test_gigapage_too_small_machine():
    k = make_linux(mem_mib=64)
    with pytest.raises(ContiguityError):
        k.alloc_gigapage()
    assert k.stat[ev.HUGETLB_1G_FAIL] == 1


def test_gigapage_success_and_free():
    k = make_linux(mem_mib=1024 + 2)  # room for one aligned 1 GiB range
    h = k.alloc_gigapage()
    assert h.nframes == GIGAPAGE_FRAMES
    assert h.pfn % GIGAPAGE_FRAMES == 0
    k.check_consistency()
    k.free_pages(h)
    assert k.free_frames() == k.mem.nframes
    k.check_consistency()


def test_gigapage_blocked_by_scattered_unmovable():
    k = make_linux(mem_mib=1024)
    # One unmovable page per 2 MiB block poisons every candidate range.
    for block in range(k.mem.npageblocks):
        k.alloc_pages(0, source=AllocSource.SLAB)
    with pytest.raises(ContiguityError):
        k.alloc_gigapage()


def test_pin_in_place(linux):
    h = linux.alloc_pages(0)
    pfn_before = h.pfn
    linux.pin_pages(h)
    assert h.pinned
    assert h.pfn == pfn_before  # Linux pins in place: pollution
    assert linux.mem.unmovable_mask()[h.pfn]
    linux.unpin_pages(h)
    assert not linux.mem.unmovable_mask()[h.pfn]


def test_advance_runs_background_reclaim():
    k = make_linux(mem_mib=4)
    while k.free_frames() > k.watermarks.low - 1:
        k.alloc_pages(0, reclaimable=True)
    k.advance(1000)
    assert k.free_frames() >= k.watermarks.low


def test_churn_preserves_consistency(rng):
    k = make_linux(mem_mib=16)
    churn(k, rng, steps=1500)
    k.check_consistency()


def test_fallback_scatters_unmovable_blocks(rng):
    """The root-cause behaviour (paper §2.5): at production utilisation —
    memory full of page cache — unmovable allocations land wherever
    reclaim frees pages and spread over many pageblocks."""
    k = make_linux(mem_mib=32)
    churn(k, rng, steps=5000, unmovable_fraction=0.3, fill_cache=True,
          cache_churn=1.0)
    unmovable = k.mem.unmovable_mask()
    blocks_touched = {
        int(pfn) // PAGEBLOCK_FRAMES
        for pfn in unmovable.nonzero()[0]
    }
    assert len(blocks_touched) > k.mem.npageblocks // 4
