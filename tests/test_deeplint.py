"""deeplint: whole-program passes, SARIF, baseline, determinism.

Fixture packages under ``tests/fixtures/deeplint/`` carry one seeded
violation and one allowlisted case per DL rule (``dirty``) and a
conforming package (``clean``); the shipped ``src/repro`` tree itself
must be deep-clean with the committed (empty) baseline.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.deeplint import (
    BaselineError,
    DeepLintError,
    apply_baseline,
    deep_lint_paths,
    find_contract_root,
    full_rule_catalogue,
    load_baseline,
    render_sarif,
    write_baseline,
)
from repro.analysis.deeplint.sarif import finding_fingerprint

TESTS = pathlib.Path(__file__).parent
FIXTURES = TESTS / "fixtures" / "deeplint"
DIRTY = FIXTURES / "dirty" / "pkg"
CLEAN = FIXTURES / "clean" / "pkg"
REPO = TESTS.parent
SRC = REPO / "src" / "repro"


@pytest.fixture(scope="module")
def dirty():
    return deep_lint_paths([DIRTY])


def rules_at(findings, path_suffix):
    return [f.rule for f in findings if f.path.endswith(path_suffix)]


class TestDL101Telemetry:
    def test_undocumented_tracepoint_flagged(self, dirty):
        msgs = [f.message for f in dirty if f.rule == "DL101"]
        assert any("'pkg.rogue'" in m and "tracepoint" in m for m in msgs)

    def test_allowlisted_tracepoint_suppressed(self, dirty):
        assert not any("pkg.hushed" in f.message for f in dirty)

    def test_undocumented_metric_flagged(self, dirty):
        msgs = [f.message for f in dirty if f.rule == "DL101"]
        assert any("'pkg.unlisted'" in m for m in msgs)

    def test_kind_collision_flagged(self, dirty):
        msgs = [f.message for f in dirty if f.rule == "DL101"]
        assert any("kind collision" in m and "'pkg.mismatch'" in m
                   for m in msgs)

    def test_documented_but_dead_name_anchored_in_docs(self, dirty):
        dead = [f for f in dirty if "pkg.dead" in f.message]
        assert len(dead) == 1
        assert dead[0].rule == "DL101"
        assert dead[0].path.endswith("docs/OBSERVABILITY.md")

    def test_pattern_name_matches_fstring_emission(self, dirty):
        # pkg.latency.{class} is emitted as f"pkg.latency.{cls}": no
        # undocumented-emission and no dead-name finding for it.
        assert not any("pkg.latency" in f.message for f in dirty)


class TestDL102Streams:
    def test_malformed_stream_name_flagged(self, dirty):
        msgs = [f.message for f in dirty if f.rule == "DL102"]
        assert any("'nocolons'" in m for m in msgs)

    def test_allowlisted_stream_suppressed(self, dirty):
        assert not any("hush" in f.message for f in dirty)

    def test_escaping_stream_flagged(self, dirty):
        msgs = [f.message for f in dirty if f.rule == "DL102"]
        assert any("escapes" in m and "leak()" in m for m in msgs)

    def test_conforming_stream_not_flagged(self, dirty):
        assert not any("streams:svc" in f.message for f in dirty)

    def test_seed_anywhere_in_dynamic_fields_is_accepted(self):
        # The shipped fault plan seeds fault:site:{server_seed}:{attempt}
        # — the seed is not the final field and that is fine.
        src = textwrap.dedent("""
            import random

            def draw(server_seed, attempt):
                rng = random.Random(
                    f"streams:crash:{server_seed}:{attempt}")
                return rng.random()
        """)
        assert self._lint_snippet(src) == []

    def test_integer_seeds_are_out_of_scope(self):
        src = textwrap.dedent("""
            import random

            def draw(seed):
                return random.Random(seed * 3).random()
        """)
        assert self._lint_snippet(src) == []

    @staticmethod
    def _lint_snippet(source):
        import ast

        from repro.analysis.deeplint.model import ModuleInfo, ProgramModel
        from repro.analysis.deeplint.passes import RngStreamRule
        from repro.analysis.simlint.core import FileContext

        model = ProgramModel()
        ctx = FileContext(source, "pkg/streams.py")
        info = ModuleInfo("pkg.streams", "pkg/streams.py", ctx)
        model.modules[info.name] = info
        model.build_indexes()
        return [f for f in RngStreamRule().check(model, None)]


class TestDL103ApiSurface:
    def test_deprecated_import_flagged(self, dirty):
        msgs = [f.message for f in dirty if f.rule == "DL103"]
        assert any("pkg.api.OLD" in m for m in msgs)

    def test_deprecated_call_flagged_once_allowlisted_once(self, dirty):
        calls = [f for f in dirty
                 if f.rule == "DL103" and "old_helper()" in f.message]
        assert len(calls) == 1
        assert calls[0].path.endswith("pkg/uses.py")

    def test_missing_all_snapshot_flagged(self, dirty):
        msgs = [f.message for f in dirty if f.rule == "DL103"]
        assert any("pkg.bare" in m and "__all__" in m for m in msgs)

    def test_unfrozen_front_door_config_flagged(self, dirty):
        msgs = [f.message for f in dirty if f.rule == "DL103"]
        assert any("FrontConfig" in m and "frozen" in m for m in msgs)

    def test_live_shim_not_reported_missing(self, dirty):
        assert not any("no shim" in f.message for f in dirty)


class TestDL103ScenarioLibrary:
    """The fifth DL103 claim: a documented `.scenarios` front door must
    ship a structurally valid bundled library."""

    def _library(self, dirty):
        return [f for f in dirty
                if f.rule == "DL103" and "/library/" in f.path]

    def test_bad_stem_gets_three_findings(self, dirty):
        msgs = [f.message for f in self._library(dirty)
                if f.path.endswith("bad_stem.yml")]
        assert any("kebab-case" in m for m in msgs)
        assert any("match the file stem" in m for m in msgs)
        assert any("'smoke' mapping" in m for m in msgs)
        assert len(msgs) == 3

    def test_parse_error_carries_yaml_line(self, dirty):
        hits = [f for f in self._library(dirty)
                if f.path.endswith("broken.yml")]
        assert len(hits) == 1
        assert hits[0].line == 3
        assert "does not parse" in hits[0].message

    def test_conforming_file_is_clean(self, dirty):
        assert not any(f.path.endswith("good-one.yml")
                       for f in self._library(dirty))

    def test_undocumented_scenarios_module_not_checked(self):
        # CLEAN's API.md has no `.scenarios` section, so the library
        # contract stays unarmed there (asserted via zero findings in
        # TestCleanAndShippedTrees); the real tree documents
        # `repro.scenarios` and its 11 bundled files must stay clean.
        findings = deep_lint_paths([SRC])
        assert not any("/library/" in f.path for f in findings)


class TestDL104Determinism:
    def test_set_iteration_on_reachable_path_flagged(self, dirty):
        hits = [f for f in dirty
                if f.rule == "DL104" and "set iteration" in f.message]
        assert len(hits) == 1
        assert "_render()" in hits[0].message

    def test_id_call_on_reachable_path_flagged(self, dirty):
        hits = [f for f in dirty
                if f.rule == "DL104" and "id()" in f.message]
        assert len(hits) == 1

    def test_unreachable_function_not_flagged(self, dirty):
        assert not any("unrelated" in f.message for f in dirty)

    def test_allowlisted_iteration_suppressed(self, dirty):
        # The literal-set loop carries a disable comment: exactly one
        # set-iteration finding despite two set iterations in _render.
        hits = [f for f in dirty
                if f.rule == "DL104" and "set iteration" in f.message]
        assert len(hits) == 1


class TestCleanAndShippedTrees:
    def test_clean_fixture_has_zero_findings(self):
        assert deep_lint_paths([CLEAN]) == []

    def test_shipped_tree_is_deep_clean(self):
        # The acceptance bar: repo code satisfies its own contracts
        # with no baseline debt.
        assert deep_lint_paths([SRC]) == []

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(str(REPO / ".deeplint-baseline.json"))
        assert baseline.entries == ()

    def test_missing_docs_raise(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("X = 1\n")
        with pytest.raises(DeepLintError):
            deep_lint_paths([tmp_path / "pkg"])

    def test_unparsable_file_reports_dl100(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "OBSERVABILITY.md").write_text(
            "### Tracepoint catalogue\n\n### Metric catalogue\n")
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "broken.py").write_text("def f(:\n")
        findings = deep_lint_paths([pkg])
        assert [f.rule for f in findings] == ["DL100"]


class TestDeterminism:
    def test_two_runs_identical_findings(self):
        assert deep_lint_paths([DIRTY]) == deep_lint_paths([DIRTY])

    def test_sarif_byte_identical_across_runs(self):
        docs = [render_sarif(deep_lint_paths([DIRTY]),
                             full_rule_catalogue())
                for _ in range(2)]
        assert docs[0] == docs[1]

    def test_json_byte_identical_across_runs(self):
        from repro.analysis.simlint import render_json

        docs = [render_json(deep_lint_paths([DIRTY])) for _ in range(2)]
        assert docs[0] == docs[1]


class TestSarif:
    def test_document_shape(self, dirty):
        doc = json.loads(render_sarif(dirty, full_rule_catalogue()))
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-deeplint"
        rule_ids = [r["id"] for r in driver["rules"]]
        for code in ("SL001", "DL101", "DL102", "DL103", "DL104"):
            assert code in rule_ids
        assert run["results"], "dirty fixture must produce results"
        for result in run["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            assert result["level"] == "error"
            assert result["message"]["text"]
            (loc,) = result["locations"]
            region = loc["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1
            uri = loc["physicalLocation"]["artifactLocation"]["uri"]
            assert "\\" not in uri  # posix separators only
            assert result["partialFingerprints"]["reproDeeplint/v1"]

    def test_round_trip_is_stable(self, dirty):
        rendered = render_sarif(dirty, full_rule_catalogue())
        reparsed = json.loads(rendered)
        assert json.dumps(reparsed, sort_keys=True, indent=2) + "\n" == \
            rendered

    def test_baselined_results_marked_suppressed(self, dirty):
        target = dirty[0]
        doc = json.loads(render_sarif(
            dirty, full_rule_catalogue(),
            frozenset({finding_fingerprint(target)})))
        flags = [("suppressions" in r) for r in doc["runs"][0]["results"]]
        assert flags.count(True) == 1


class TestBaseline:
    def test_write_load_apply_suppresses_everything(self, dirty,
                                                    tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(str(path), dirty)
        baseline = load_baseline(str(path))
        active, suppressed, stale = apply_baseline(dirty, baseline)
        assert active == []
        assert sorted(suppressed) == sorted(dirty)
        assert stale == []

    def test_line_number_changes_do_not_unsuppress(self, dirty,
                                                   tmp_path):
        from dataclasses import replace

        path = tmp_path / "baseline.json"
        write_baseline(str(path), dirty)
        moved = [replace(f, line=f.line + 40) for f in dirty]
        active, suppressed, stale = apply_baseline(
            moved, load_baseline(str(path)))
        assert active == []
        assert stale == []

    def test_stale_entries_reported(self, dirty, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(str(path), dirty)
        active, _suppressed, stale = apply_baseline(
            dirty[1:], load_baseline(str(path)))
        assert active == []
        assert len(stale) == 1
        assert stale[0]["message"] == dirty[0].message

    def test_no_baseline_passes_findings_through(self, dirty):
        active, suppressed, stale = apply_baseline(dirty, None)
        assert active == dirty
        assert suppressed == [] and stale == []

    def test_bad_baseline_rejected(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text("[not json")
        with pytest.raises(BaselineError):
            load_baseline(str(bad))
        bad.write_text('{"schema": 99, "suppressions": []}')
        with pytest.raises(BaselineError):
            load_baseline(str(bad))
        bad.write_text('{"schema": 1, "suppressions": [{"rule": "X"}]}')
        with pytest.raises(BaselineError):
            load_baseline(str(bad))


class TestContractRoot:
    def test_fixture_docs_shadow_repo_docs(self):
        root = find_contract_root([DIRTY])
        assert pathlib.Path(root) == FIXTURES / "dirty"

    def test_repo_root_found_from_src(self):
        assert pathlib.Path(find_contract_root([SRC])) == REPO


def _run_cli(*args, cwd=None):
    import os

    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True, text=True, cwd=cwd or str(REPO), env=env)


class TestCli:
    def test_dirty_fixture_fails_with_dl_findings(self):
        proc = _run_cli("--deep", "--json", str(DIRTY))
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        rules = {f["rule"] for f in doc["findings"]}
        assert {"DL101", "DL102", "DL103", "DL104"} <= rules

    def test_shipped_tree_strict_exits_zero(self):
        proc = _run_cli("--deep", "--strict", "src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_sarif_stdout_parses(self):
        proc = _run_cli("--deep", "--sarif", "-", str(DIRTY))
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["version"] == "2.1.0"

    def test_write_baseline_then_rerun_is_clean(self, tmp_path):
        baseline = tmp_path / "b.json"
        first = _run_cli("--deep", "--write-baseline",
                         "--baseline", str(baseline), str(DIRTY))
        assert first.returncode == 0, first.stdout + first.stderr
        second = _run_cli("--deep", "--strict",
                          "--baseline", str(baseline), str(DIRTY))
        assert second.returncode == 0, second.stdout + second.stderr

    def test_strict_fails_on_stale_baseline_entry(self, tmp_path):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({
            "schema": 1,
            "suppressions": [{"rule": "DL101", "path": "gone.py",
                              "message": "never matches"}],
        }))
        proc = _run_cli("--deep", "--strict",
                        "--baseline", str(baseline), "src/repro")
        assert proc.returncode == 1
        assert "stale baseline entry" in proc.stderr
        relaxed = _run_cli("--deep", "--baseline", str(baseline),
                           "src/repro")
        assert relaxed.returncode == 0
