"""Public API surface snapshots and the deprecation-shim contract.

The exported-symbol sets below are the stable surface documented in
docs/API.md.  Changing them is allowed — but it must be a deliberate
act: update the snapshot here *and* docs/API.md in the same change.
Accidental exports (a helper leaking into ``import *``) and accidental
breakage (a public name vanishing in a refactor) both fail this file.
"""

import warnings

import pytest

import repro
import repro.experiments
import repro.fleet
import repro.scenarios
import repro.workloads
from repro.errors import ConfigurationError
from repro.fleet import FleetConfig, run_fleet, sample_fleet
from repro.fleet import sampler as sampler_mod
from repro.fleet.server import ServerConfig
from repro.units import MiB

SMALL = ServerConfig(mem_bytes=MiB(64), min_uptime_steps=20,
                     max_uptime_steps=40)


class TestExportSnapshots:
    def test_repro_all(self):
        assert sorted(repro.__all__) == [
            "AccessMode",
            "AllocSource",
            "ConfigurationError",
            "ContiguitasConfig",
            "ContiguitasKernel",
            "ContiguityError",
            "HardwareProtocolError",
            "HwMigrationEngine",
            "IlluminatorKernel",
            "KernelConfig",
            "LinuxKernel",
            "MigrateType",
            "MigrationError",
            "OutOfMemoryError",
            "PageHandle",
            "PlacementPolicy",
            "RegionLayout",
            "RegionResizer",
            "ReproError",
            "ResizeConfig",
            "Workload",
            "WorkloadSpec",
            "__version__",
        ]

    def test_fleet_all(self):
        assert sorted(repro.fleet.__all__) == [
            "FLEET_SERVICES",
            "FleetConfig",
            "FleetSample",
            "FleetSummary",
            "ServerConfig",
            "ServerScan",
            "SimulatedServer",
            "WorkerOutcome",
            "cdf_at",
            "check_survey_fit",
            "estimate_survey_bytes",
            "iter_fleet_scans",
            "median",
            "pearson",
            "percentile",
            "render_report",
            "resolve_workers",
            "run_fleet",
            "run_fleet_scans",
            "sample_fleet",
            "survey_fleet",
        ]

    def test_experiments_all(self):
        assert sorted(repro.experiments.__all__) == [
            "Axis",
            "AxisValue",
            "CACHE_ENV",
            "CACHE_SCHEMA",
            "Cell",
            "ExperimentContext",
            "ExperimentResult",
            "ExperimentSpec",
            "ResultCache",
            "SweepResult",
            "all_specs",
            "axes_from_grid",
            "canonical_json",
            "default_cache_dir",
            "expand_axes",
            "get_spec",
            "load_cached",
            "register",
            "result_key",
            "run_experiment",
            "run_sweep",
            "unregister",
            "value_id",
        ]

    def test_scenarios_all(self):
        assert sorted(repro.scenarios.__all__) == [
            "Scenario",
            "ScenarioConfig",
            "ScenarioMatrix",
            "ScenarioResult",
            "Smoke",
            "YamliteError",
            "get_scenario",
            "library_dir",
            "list_scenarios",
            "load_matrix",
            "load_scenario",
            "render_html",
            "render_markdown",
            "run_scenario",
            "scenario_from_dict",
        ]

    def test_workloads_all(self):
        assert sorted(repro.workloads.__all__) == [
            "LatencyRecorder",
            "LoadgenConfig",
            "LoadgenResult",
            "LoopResult",
            "MEMCACHED",
            "MigrationSchedule",
            "NGINX",
            "PRODUCTION_SERVICES",
            "REGULAR_RATE",
            "RequestLoop",
            "ServerApp",
            "TraceEvent",
            "TraceRecorder",
            "TraceShape",
            "VERY_HIGH_RATE",
            "WALK_CHARACTERISATION",
            "Workload",
            "WorkloadConfig",
            "WorkloadResult",
            "WorkloadSpec",
            "canonical_service_name",
            "fragment_fully",
            "fragment_partially",
            "get_service",
            "get_shape",
            "interference_overhead",
            "list_services",
            "list_shapes",
            "load_trace",
            "migration_window_cycles",
            "register_service",
            "register_shape",
            "relative_throughput",
            "relative_throughput_simulated",
            "replay",
            "run_loadgen",
            "run_workload",
            "sample_arrivals",
            "sample_service",
        ]

    def test_all_names_actually_exported(self):
        for mod in (repro, repro.fleet, repro.experiments, repro.workloads,
                    repro.scenarios):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"

    def test_lint_rule_ids_pinned(self):
        # The analysis rule set is surface too: CI gates, baselines,
        # and SARIF consumers key on these IDs.  Adding or removing a
        # rule must update this snapshot, docs/ANALYSIS.md, and the
        # fixture coverage in tests/test_deeplint.py together.
        from repro.analysis.deeplint import full_rule_catalogue

        assert [code for code, _, _ in full_rule_catalogue()] == [
            "SL000",
            "SL001",
            "SL002",
            "SL003",
            "SL004",
            "SL005",
            "SL006",
            "SL007",
            "SL008",
            "SL009",
            "SL010",
            "DL100",
            "DL101",
            "DL102",
            "DL103",
            "DL104",
        ]


class TestFrontDoor:
    def test_run_fleet_takes_config_returns_sample(self):
        sample = run_fleet(FleetConfig(n_servers=2, server=SMALL,
                                       base_seed=4, workers=1))
        assert len(sample.scans) == 2

    def test_run_fleet_config_rejects_stray_kwargs(self):
        with pytest.raises(ConfigurationError, match="no keyword"):
            run_fleet(FleetConfig(n_servers=1, server=SMALL), workers=1)

    def test_fleet_config_is_frozen_and_validated(self):
        cfg = FleetConfig(n_servers=2, server=SMALL)
        with pytest.raises(Exception):
            cfg.n_servers = 5
        with pytest.raises(ConfigurationError):
            FleetConfig(n_servers=-1)
        with pytest.raises(ConfigurationError):
            FleetConfig(n_servers=1, workers=-2)
        with pytest.raises(ConfigurationError):
            FleetConfig(n_servers=1, max_retries=-1)


class TestDeprecationShims:
    def test_sample_fleet_warns_exactly_once(self):
        sampler_mod._DEPRECATION_WARNED.discard("sample_fleet")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            a = sample_fleet(n_servers=1, config=SMALL, base_seed=2,
                             workers=1)
            b = sample_fleet(n_servers=1, config=SMALL, base_seed=2,
                             workers=1)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)
                        and "sample_fleet" in str(w.message)]
        assert len(deprecations) == 1
        assert a.scans == b.scans

    def test_sample_fleet_second_call_survives_w_error(self):
        """After the single warning fired, the shim is silent even under
        ``-W error`` — sweeps over thousands of samples don't die."""
        sampler_mod._DEPRECATION_WARNED.discard("sample_fleet")
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            sample_fleet(n_servers=1, config=SMALL, base_seed=2, workers=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sample_fleet(n_servers=1, config=SMALL, base_seed=2, workers=1)

    def test_sample_fleet_first_call_raises_under_w_error(self):
        sampler_mod._DEPRECATION_WARNED.discard("sample_fleet")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning, match="FleetConfig"):
                sample_fleet(n_servers=1, config=SMALL, base_seed=2,
                             workers=1)

    def test_shim_matches_front_door(self):
        sampler_mod._DEPRECATION_WARNED.add("sample_fleet")
        shim = sample_fleet(n_servers=2, config=SMALL, base_seed=6,
                            workers=1)
        front = run_fleet(FleetConfig(n_servers=2, server=SMALL,
                                      base_seed=6, workers=1))
        assert shim == front


class TestWorkloadFrontDoor:
    def test_get_service_kebab_and_alias(self):
        from repro.workloads import canonical_service_name, get_service

        assert get_service("cache-b").name == "CacheB"
        # CamelCase spec names resolve as aliases of the kebab registry.
        assert get_service("CacheB") is get_service("cache-b")
        assert canonical_service_name("CacheB") == "cache-b"

    def test_get_service_unknown_lists_known(self):
        from repro.workloads import get_service

        with pytest.raises(ConfigurationError, match="cache-b"):
            get_service("no-such-service")

    def test_list_services_sorted_kebab(self):
        from repro.workloads import list_services

        names = list_services()
        assert names == sorted(names)
        assert {"web", "cache-a", "cache-b", "ci", "ads",
                "rdma"} <= set(names)

    def test_workload_config_frozen_and_validated(self):
        from repro.workloads import WorkloadConfig

        cfg = WorkloadConfig(service="web")
        with pytest.raises(Exception):
            cfg.steps = 5
        with pytest.raises(ConfigurationError):
            WorkloadConfig(service="web", steps=-1)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(service="web", kernel="plan9")
        with pytest.raises(ConfigurationError):
            WorkloadConfig(service="web", mem_bytes=MiB(1))

    def test_run_workload_returns_snapshotable_result(self):
        from repro.workloads import WorkloadConfig, run_workload

        result = run_workload(WorkloadConfig(
            service="cache-b", mem_bytes=MiB(64), steps=30, seed=5))
        snap = result.snapshot()
        assert snap["service"] == "cache-b"
        assert snap["steps"] == 30
        assert 0.0 <= snap["huge_coverage"]["2m"] <= 1.0
        assert "latency" not in snap  # no loadgen burst requested


class TestWorkloadDeprecationShims:
    def _reset(self, key: str) -> None:
        repro.workloads._DEPRECATION_WARNED.discard(key)

    def test_service_constant_warns_exactly_once(self):
        self._reset("WEB")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            a = repro.workloads.WEB
            b = repro.workloads.WEB
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)
                        and "WEB" in str(w.message)]
        assert len(deprecations) == 1
        assert a is b

    def test_service_constant_first_access_raises_under_w_error(self):
        self._reset("CACHE_B")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning, match="cache-b"):
                repro.workloads.CACHE_B

    def test_by_name_shim_matches_registry(self):
        from repro.workloads import get_service, list_services

        repro.workloads._DEPRECATION_WARNED.add("BY_NAME")
        by_name = repro.workloads.BY_NAME
        for camel, spec in by_name.items():
            assert get_service(camel) is spec
        assert len(by_name) == len(list_services())

    def test_shim_matches_front_door(self):
        from repro.workloads import get_service

        repro.workloads._DEPRECATION_WARNED.add("RDMA")
        assert repro.workloads.RDMA is get_service("rdma")


class TestScenarioFrontDoor:
    def test_scenario_config_frozen_and_validated(self):
        from repro.scenarios import ScenarioConfig

        cfg = ScenarioConfig(scenario="fragmentation-aging", smoke=True)
        with pytest.raises(Exception):
            cfg.smoke = False
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scenario=42)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scenario="x", workers=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scenario="x", checkpoint_every=-1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scenario="x", cells=("ok", ""))
        with pytest.raises(ConfigurationError):
            ScenarioConfig(scenario="x", select={"axis": 3})

    def test_run_scenario_takes_config_returns_result(self, tmp_path):
        from repro.experiments import ResultCache
        from repro.scenarios import ScenarioConfig, run_scenario

        cache = ResultCache(str(tmp_path / "cache"))
        result = run_scenario(
            ScenarioConfig(scenario="fragmentation-aging", smoke=True,
                           workers=1),
            cache=cache)
        assert len(result.cells) == 1
        assert result.report().startswith("# Scenario: fragmentation-aging")


class TestGridDeprecationShim:
    """ExperimentSpec's legacy grid dicts ride the same warn-once policy
    as every other shim — and normalise onto the Axis/Cell engine."""

    def _spec(self, **kwargs):
        from repro.experiments import ExperimentSpec

        return ExperimentSpec(
            name="grid-shim-probe", description="probe",
            producer=lambda ctx: [],
            defaults={"steps": 10, "service": "web"}, **kwargs)

    def _reset(self):
        from repro.experiments import spec as spec_mod

        spec_mod._DEPRECATION_WARNED.discard("ExperimentSpec.grid")

    def test_grid_dict_warns_exactly_once(self):
        self._reset()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            a = self._spec(grid={"steps": (10, 20)})
            b = self._spec(grid={"steps": (10, 20)})
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)
                        and "axes" in str(w.message)]
        assert len(deprecations) == 1
        assert [c.id for c in a.grid_cells()] == \
               [c.id for c in b.grid_cells()]

    def test_grid_dict_second_use_survives_w_error(self):
        self._reset()
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            self._spec(grid={"steps": (10, 20)})
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            self._spec(grid={"steps": (10, 20)})

    def test_grid_dict_first_use_raises_under_w_error(self):
        self._reset()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning, match="axes"):
                self._spec(grid={"steps": (10, 20)})

    def test_grid_dict_matches_axes_spelling(self):
        from repro.experiments import axes_from_grid
        from repro.experiments import spec as spec_mod

        spec_mod._DEPRECATION_WARNED.add("ExperimentSpec.grid")
        legacy = self._spec(grid={"steps": (10, 20), "service": ("web",)})
        modern = self._spec(axes=axes_from_grid(
            {"steps": (10, 20), "service": ("web",)}))
        assert legacy.axes == modern.axes
        assert [(c.id, c.overrides) for c in legacy.grid_cells()] == \
               [(c.id, c.overrides) for c in modern.grid_cells()]
