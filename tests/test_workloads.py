"""Workload driver, service specs, fragmenters, interference model."""

import pytest

from repro.core.hwext import AccessMode
from repro.mm import vmstat as ev
from repro.units import MiB, PAGEBLOCK_FRAMES
from repro.workloads import (
    MEMCACHED,
    NGINX,
    PRODUCTION_SERVICES,
    REGULAR_RATE,
    VERY_HIGH_RATE,
    Workload,
    WorkloadSpec,
    fragment_fully,
    fragment_partially,
    interference_overhead,
    relative_throughput,
)
from repro.workloads.services import CACHE_B, CI, WEB
from repro.analysis import unmovable_block_fraction, unmovable_page_fraction

from conftest import make_contiguitas, make_linux


class TestWorkloadLifecycle:
    def test_start_maps_heap_and_cache(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, CACHE_B, seed=0)
        w.start()
        assert w.anon_frames() >= int(k.mem.nframes * 0.5)
        assert len(w.cache_pages) > 0
        assert w.netpool.frames_in_use() > 0

    def test_thp_used_when_memory_clean(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, CACHE_B, seed=0)
        w.start()
        assert w.thp_hits > 0
        assert w.huge_coverage()["2m"] > 0.9

    def test_steps_churn_without_leaking(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, CACHE_B, seed=0)
        w.start()
        for _ in range(100):
            w.step()
        k.check_consistency()
        assert w.oom_events == 0

    def test_stop_releases_service_memory(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, CACHE_B, seed=0)
        w.start()
        for _ in range(50):
            w.step()
        before = k.free_frames()
        w.stop()
        assert k.free_frames() > before
        k.check_consistency()

    def test_huge_coverage_fractions_sum_to_one(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, WEB, seed=0)
        w.start()
        cov = w.huge_coverage()
        assert sum(cov.values()) == pytest.approx(1.0)

    def test_web_tries_gigapages(self):
        k = make_linux(mem_mib=64)  # too small for 1 GiB: graceful miss
        w = Workload(k, WEB, seed=0)
        w.start()
        assert w.gigapages == []
        assert k.stat[ev.HUGETLB_1G_FAIL] >= 0


class TestServiceSpecs:
    def test_production_set(self):
        names = {s.name for s in PRODUCTION_SERVICES}
        assert names == {"Web", "CacheA", "CacheB"}

    def test_only_web_wants_gigapages(self):
        assert WEB.wants_1g
        assert not CACHE_B.wants_1g

    def test_ci_is_kernel_heavy(self):
        assert CI.slab_rate_per_gib > CACHE_B.slab_rate_per_gib
        assert CI.fs_rate_per_gib > CACHE_B.fs_rate_per_gib


class TestFragmentation:
    def test_full_fragmentation_blocks_thp(self):
        k = make_linux(mem_mib=64, compaction_enabled=False)
        fragment_fully(k)
        assert unmovable_block_fraction(
            k.mem, PAGEBLOCK_FRAMES) > 0.5
        assert k.alloc_thp() is None

    def test_full_fragmentation_leaves_memory_mostly_free(self):
        k = make_linux(mem_mib=64)
        fragment_fully(k)
        assert k.free_frames() > k.mem.nframes * 0.7
        assert unmovable_page_fraction(k.mem) < 0.15

    def test_contiguitas_immune_to_full_fragmentation(self):
        """The paper's key claim: Contiguitas behaves identically under
        Full and Partial fragmentation because unmovable allocations are
        confined."""
        k = make_contiguitas(mem_mib=64)
        fragment_fully(k)
        assert k.confinement_violations() == 0
        assert k.alloc_thp() is not None

    def test_partial_fragmentation_runs_and_restarts(self):
        k = make_linux(mem_mib=64)
        fragment_partially(k, CACHE_B, steps=30)
        # The kernel survived a full service lifecycle.
        k.check_consistency()
        w = Workload(k, CACHE_B, seed=1)
        w.start()
        assert w.anon_frames() > 0


class TestInterference:
    def test_regular_rate_negligible(self):
        for app in (NGINX, MEMCACHED):
            oh = interference_overhead(app, REGULAR_RATE,
                                       AccessMode.NONCACHEABLE)
            assert oh < 0.001, app.name

    def test_very_high_rate_small_noncacheable(self):
        """§5.3: 0.2 % for NGINX, 0.3 % for memcached at 1000/s."""
        nginx = interference_overhead(NGINX, VERY_HIGH_RATE,
                                      AccessMode.NONCACHEABLE)
        mc = interference_overhead(MEMCACHED, VERY_HIGH_RATE,
                                   AccessMode.NONCACHEABLE)
        assert 0.0005 < nginx < 0.005
        assert 0.0005 < mc < 0.006
        assert mc > nginx  # memcached touches buffers harder

    def test_cacheable_effectively_free(self):
        oh = interference_overhead(MEMCACHED, VERY_HIGH_RATE,
                                   AccessMode.CACHEABLE)
        assert oh < 0.0001

    def test_relative_throughput(self):
        rel = relative_throughput(NGINX, VERY_HIGH_RATE,
                                  AccessMode.NONCACHEABLE)
        assert 0.99 < rel < 1.0

    def test_overhead_scales_with_rate(self):
        a = interference_overhead(NGINX, 100, AccessMode.NONCACHEABLE)
        b = interference_overhead(NGINX, 1000, AccessMode.NONCACHEABLE)
        assert b == pytest.approx(10 * a)
