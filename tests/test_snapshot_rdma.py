"""Memory snapshots and the RDMA (pin-heavy) workload."""

import os

import pytest

from repro.analysis import (
    load_snapshot,
    save_snapshot,
    unmovable_block_fraction,
    unmovable_page_fraction,
)
from repro.analysis.contiguity import movable_potential
from repro.errors import ConfigurationError
from repro.units import PAGEBLOCK_FRAMES
from repro.workloads import Workload
from repro.workloads.services import RDMA

from conftest import make_contiguitas, make_linux


class TestSnapshot:
    def test_roundtrip_preserves_scans(self, tmp_path, linux, rng):
        from conftest import churn

        churn(linux, rng, steps=800, unmovable_fraction=0.25)
        path = os.path.join(tmp_path, "scan.npz")
        save_snapshot(linux.mem, path, meta={"host": "sim-01"})
        snap = load_snapshot(path)
        assert snap.nframes == linux.mem.nframes
        assert snap.meta["host"] == "sim-01"
        assert snap.free_frames() == linux.mem.free_frames()
        # The analysis functions give identical answers on the snapshot.
        assert unmovable_block_fraction(snap, PAGEBLOCK_FRAMES) == \
            unmovable_block_fraction(linux.mem, PAGEBLOCK_FRAMES)
        assert movable_potential(snap, PAGEBLOCK_FRAMES) == \
            movable_potential(linux.mem, PAGEBLOCK_FRAMES)

    def test_snapshot_is_independent_copy(self, tmp_path, linux):
        h = linux.alloc_pages(0)
        path = os.path.join(tmp_path, "scan.npz")
        save_snapshot(linux.mem, path)
        snap = load_snapshot(path)
        linux.free_pages(h)
        assert snap.free_frames() == linux.mem.free_frames() - 1

    def test_bad_version_rejected(self, tmp_path, linux):
        import numpy as np

        path = os.path.join(tmp_path, "bad.npz")
        np.savez_compressed(path, version=np.array([99]),
                            flags=linux.mem.flags,
                            migratetype=linux.mem.migratetype,
                            source=linux.mem.source,
                            alloc_order=linux.mem.alloc_order)
        with pytest.raises(ConfigurationError):
            load_snapshot(path)


class TestRdmaWorkload:
    def test_pins_dominate_unmovable_mix(self):
        k = make_linux(mem_mib=64)
        w = Workload(k, RDMA, seed=2)
        w.start()
        for _ in range(300):
            w.step()
        # Long-lived pins: a large share of unmovable memory is pinned
        # user pages, not kernel allocations.
        pinned = int(k.mem.pinned_mask().sum())
        unmovable = int(k.mem.unmovable_mask().sum())
        assert pinned > 0.3 * unmovable

    def test_linux_pollution_vs_contiguitas_confinement(self):
        results = {}
        for name, kernel in (("linux", make_linux(mem_mib=64)),
                             ("contiguitas", make_contiguitas(mem_mib=64))):
            w = Workload(kernel, RDMA, seed=2)
            w.start()
            for _ in range(300):
                w.step()
            results[name] = unmovable_block_fraction(kernel.mem,
                                                     PAGEBLOCK_FRAMES)
            if name == "contiguitas":
                assert kernel.confinement_violations() == 0
                assert kernel.stat["pin_migrations"] > 0
        # The paper's §2.5 warning realised: RDMA pins scatter across
        # Linux's memory but stay confined on Contiguitas.
        assert results["contiguitas"] < results["linux"]
