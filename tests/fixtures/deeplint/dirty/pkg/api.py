"""The fixture's documented stable surface (shim module)."""

__all__ = ["get_new", "old_helper"]

_DEPRECATED = {"OLD": "get_new"}


def get_new():
    return 1


def old_helper():
    return get_new()


def __getattr__(name):
    if name in _DEPRECATED:
        return get_new()
    raise AttributeError(name)
