"""Seeded DL102 violations: malformed stream names and an escape."""

import random


def make_plain(seed):
    return random.Random(f"streams:svc:{seed}").random()


def make_bad(seed):
    rng = random.Random("nocolons")
    return rng.random()


def make_hushed(seed):
    rng = random.Random("hush")  # simlint: disable=DL102
    return rng.random()


def leak(seed):
    rng = random.Random(f"streams:leak:{seed}")
    return rng
