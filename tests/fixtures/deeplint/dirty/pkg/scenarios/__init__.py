"""Fixture scenario front door: the library carries seeded violations."""

__all__ = []
