"""deeplint fixture package: every DL rule has a seeded violation."""
