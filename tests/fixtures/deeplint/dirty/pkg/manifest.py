"""Seeded DL104 violations on the snapshot-reachable path."""


def snapshot(state):
    return _render(state)


def _render(values):
    tags = set(values)
    rows = [t for t in tags]
    token = id(values)
    for t in {1, 2}:  # simlint: disable=DL104
        rows.append(t)
    return rows, token


def unrelated(values):
    return [t for t in set(values)]
