"""Local telemetry stand-ins so the fixture has no repo dependencies."""


def tracepoint(name):
    return name


class MetricsRegistry:
    def inc(self, name, value=1):
        return name

    def gauge(self, name):
        return name

    def histogram(self, name):
        return name
