"""A documented front-door config that is not frozen (DL103 seed)."""

from dataclasses import dataclass


@dataclass
class FrontConfig:
    knob: int = 1
