"""Seeded DL103 violations: internal use of the deprecated surface."""

from .api import OLD, old_helper


def use():
    first = old_helper()
    second = old_helper()  # simlint: disable=DL103
    return OLD, first, second
