"""Documented in API.md but snapshots no __all__ (DL103 seed)."""

VALUE = 3
