"""Seeded DL101 violations: undocumented, mismatched, allowlisted."""

from .lib import MetricsRegistry, tracepoint

TP_GOOD = tracepoint("pkg.good")
TP_ROGUE = tracepoint("pkg.rogue")
TP_HUSHED = tracepoint("pkg.hushed")  # simlint: disable=DL101

metrics = MetricsRegistry()


def emit(cls):
    metrics.inc("pkg.count")
    metrics.inc("pkg.mismatch")
    metrics.inc("pkg.unlisted")
    metrics.histogram(f"pkg.latency.{cls}")
