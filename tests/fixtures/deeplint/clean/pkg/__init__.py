"""deeplint clean fixture package: zero deep findings by design."""
