"""A package that satisfies every deep-pass contract."""

import random

__all__ = ["run"]


def tracepoint(name):
    return name


class MetricsRegistry:
    def inc(self, name, value=1):
        return name


TP_PING = tracepoint("pkg.ping")
metrics = MetricsRegistry()


def run(seed):
    metrics.inc("pkg.ops")
    rng = random.Random(f"core:run:{seed}")
    return rng.random()
