"""Automated resize-parameter search (paper future work)."""

import pytest

from repro.core import ResizeConfig
from repro.core.autotune import (
    ScenarioResult,
    TuneOutcome,
    random_search,
    replay_demand,
    square_wave_demand,
)
from repro.errors import ConfigurationError
from repro.units import MiB


def test_square_wave_shape():
    trace = square_wave_demand(periods=2, low_frames=10, high_frames=20,
                               steps_per_level=3)
    assert trace == [10, 10, 10, 20, 20, 20] * 2


def test_replay_measures_costs():
    result = replay_demand(ResizeConfig(), square_wave_demand(periods=1),
                           mem_bytes=MiB(64))
    assert result.waste_frame_steps > 0
    assert result.boundary_moves >= 0
    assert result.cost() > 0


def test_replay_deterministic():
    demand = square_wave_demand(periods=1)
    a = replay_demand(ResizeConfig(), demand, seed=3)
    b = replay_demand(ResizeConfig(), demand, seed=3)
    assert a.cost() == b.cost()


def test_cost_weights():
    r = ScenarioResult(waste_frame_steps=10, stall_ticks=1.0,
                       boundary_moves=2)
    assert r.cost(waste_weight=1, stall_weight=0, move_weight=0) == 10
    assert r.cost(waste_weight=0, stall_weight=5, move_weight=0) == 5
    assert r.cost(waste_weight=0, stall_weight=0, move_weight=1) == 2


def test_search_never_worse_than_baseline():
    out = random_search(trials=4, seed=2)
    assert out.best_cost <= out.baseline_cost
    assert out.improvement >= 0.0
    assert out.trials == 4
    assert len(out.history) == 5  # baseline + trials


def test_search_requires_trials():
    with pytest.raises(ConfigurationError):
        random_search(trials=0)


def test_aggressive_coefficients_shrink_harder():
    """Sanity: a config with a much larger shrink coefficient wastes less
    region memory on a falling-demand trace (at the price of moves)."""
    falling = [2048] * 30 + [128] * 120
    lazy = ResizeConfig(c_us=0.005)
    eager = ResizeConfig(c_us=0.4)
    waste_lazy = replay_demand(lazy, falling).waste_frame_steps
    waste_eager = replay_demand(eager, falling).waste_frame_steps
    assert waste_eager < waste_lazy
