"""Scenario matrices: yamlite, the grid engine, the front door, reports.

Everything runs against ``tmp_path`` caches and the real bundled
library (read-only), so nothing leaks into the durable store.  The
heavyweight contracts pinned here:

* yamlite parses the documented subset and rejects everything else
  with typed, line-numbered errors;
* cell ids are deterministic and invariant under axis declaration
  reordering (the cache-key contract);
* a legacy grid dict and its ``axes_from_grid`` spelling compile to
  identical cells (property-tested) — one engine, two front doors;
* a second run of any scenario is pure cache hits with byte-identical
  report markdown, at any worker count;
* every bundled library scenario's smoke variant actually runs.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments import (
    Axis,
    AxisValue,
    ExperimentSpec,
    ResultCache,
    axes_from_grid,
    expand_axes,
    register,
    unregister,
    value_id,
)
from repro.scenarios import (
    ScenarioConfig,
    YamliteError,
    get_scenario,
    list_scenarios,
    load_matrix,
    load_scenario,
    run_scenario,
    scenario_from_dict,
    yamlite,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


@pytest.fixture
def toy_spec():
    """A registered toy experiment the scenario tests sweep."""
    calls = {"n": 0}

    def producer(ctx):
        calls["n"] += 1
        return [{"x": ctx.params["x"], "mode": ctx.params["mode"],
                 "seed": ctx.seed, "metric": ctx.params["x"] * 10}]

    spec = register(ExperimentSpec(
        name="toy-scn", description="scenario test probe",
        producer=producer, defaults={"x": 1, "mode": "a"},
        axes=axes_from_grid({"x": (1, 2)}), seed=3))
    yield spec, calls
    unregister("toy-scn")


def toy_scenario(**over):
    doc = {
        "name": "toy-matrix",
        "description": "two axes over the toy spec",
        "experiment": "toy-scn",
        "prefix": "t",
        "axes": [
            {"name": "x", "values": [1, 2]},
            {"name": "mode", "values": [
                {"id": "a", "value": "a"}, {"id": "b", "value": "b"}]},
        ],
        "smoke": {"axes": [{"name": "x", "values": [1]},
                           {"name": "mode",
                            "values": [{"id": "a", "value": "a"}]}]},
    }
    doc.update(over)
    return scenario_from_dict(doc)


class TestYamlite:
    GOLDEN = """\
# header comment
name: demo
description: "a quoted: description"
experiment: toy-scn
replicas: 2
seed: ~
options:
  mem_mib: 128
  ratio: 1.5
  verbose: true
axes:
  - name: steps
    values: [100, 400]
  - name: faults
    values:
      - id: clean
      - id: uce
        plan: uce
"""

    def test_golden_document(self):
        doc = yamlite.loads(self.GOLDEN)
        assert doc["name"] == "demo"
        assert doc["description"] == "a quoted: description"
        assert doc["replicas"] == 2
        assert doc["seed"] is None
        assert doc["options"] == {"mem_mib": 128, "ratio": 1.5,
                                  "verbose": True}
        assert doc["axes"][0] == {"name": "steps", "values": [100, 400]}
        assert doc["axes"][1]["values"][1] == {"id": "uce", "plan": "uce"}

    def test_scalars(self):
        doc = yamlite.loads(
            "a: true\nb: false\nc: null\nd: 7\ne: -2.5\nf: plain\n"
            'g: "qu\\"oted"\n')
        assert doc == {"a": True, "b": False, "c": None, "d": 7,
                       "e": -2.5, "f": "plain", "g": 'qu"oted'}

    @pytest.mark.parametrize("text,match,line", [
        ("a: {x: 1}\n", "flow mappings", 1),
        ("a: &anchor 1\n", "anchors", 1),
        ("a: *alias\n", "aliases", 1),
        ("a: |\n  text\n", "block scalars", 1),
        ("a: 1\na: 2\n", "duplicate key", 2),
        ("a: 1\n\tb: 2\n", "tab", 2),
        ("---\na: 1\n---\n", "document", 1),
        ("a: [1, [2]]\n", "nested", 1),
    ])
    def test_rejections_carry_line_numbers(self, text, match, line):
        with pytest.raises(YamliteError, match=match) as exc:
            yamlite.loads(text)
        assert exc.value.line == line
        assert f"line {line}:" in str(exc.value)

    def test_error_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            yamlite.loads("a: {}\n")


class TestGridEngine:
    def test_cell_ids_stable_under_axis_reordering(self):
        fwd = [{"name": "x", "values": [1, 2]},
               {"name": "mode", "values": [
                   {"id": "a", "value": "a"}, {"id": "b", "value": "b"}]}]
        rev = list(reversed(fwd))
        ids = lambda axes: [c.id for c in toy_scenario(axes=axes)
                            .matrix().cells()]
        assert ids(fwd) == ids(rev) == ["t-a-1", "t-a-2", "t-b-1", "t-b-2"]

    def test_value_ids_distinct_and_deterministic(self):
        assert value_id(1) == "1"
        assert value_id(-4) == "neg4"
        assert value_id(1.5) == "1.5"
        assert value_id("cache-b") == "cache-b"
        assert value_id(True) != value_id(1)
        assert value_id(None) == "null"

    def test_replicas_suffix_only_when_replicated(self):
        one = expand_axes((Axis("x", (AxisValue("1", {"x": 1}),)),))
        two = expand_axes((Axis("x", (AxisValue("1", {"x": 1}),)),),
                          replicas=2)
        assert [c.id for c in one] == ["1"]
        assert [c.id for c in two] == ["1-r0", "1-r1"]
        assert [c.replica for c in two] == [0, 1]

    @given(grid=st.dictionaries(
        st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True),
        st.lists(st.one_of(st.integers(-50, 50),
                           st.sampled_from(["a", "b", "c-d"])),
                 min_size=1, max_size=3, unique=True),
        min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_dict_grid_equals_axes_spelling(self, grid):
        """The api_redesign invariant: legacy grid dicts and explicit
        axes compile to identical cells — ids, coords, overrides."""
        from repro.experiments import spec as spec_mod

        spec_mod._DEPRECATION_WARNED.add("ExperimentSpec.grid")
        defaults = {key: values[0] for key, values in grid.items()}
        legacy = ExperimentSpec(
            name="prop-grid", description="d", producer=lambda ctx: [],
            defaults=defaults, grid={k: tuple(v) for k, v in grid.items()})
        modern = ExperimentSpec(
            name="prop-grid", description="d", producer=lambda ctx: [],
            defaults=defaults, axes=axes_from_grid(grid))
        assert legacy.axes == modern.axes
        assert [(c.id, c.coords, c.overrides)
                for c in legacy.grid_cells()] == \
               [(c.id, c.coords, c.overrides)
                for c in modern.grid_cells()]

    def test_plan_axis_limits(self):
        axes = [
            {"name": "f1", "values": [{"id": "u", "plan": "uce"},
                                      {"id": "c"}]},
            {"name": "f2", "values": [{"id": "u2", "plan": "uce"},
                                      {"id": "c2"}]},
        ]
        smoke = {"axes": [{"name": "f1", "values": [{"id": "c"}]}]}
        with pytest.raises(ConfigurationError, match="plan"):
            toy_scenario(axes=axes, smoke=smoke).matrix().cells()

    def test_unknown_plan_rejected(self):
        with pytest.raises(ConfigurationError, match="crash-only"):
            toy_scenario(plan="no-such-plan")


class TestLoader:
    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario key"):
            scenario_from_dict({"name": "x", "description": "d",
                                "experiment": "toy-scn", "bogus": 1})

    def test_axis_value_needs_id_or_value(self):
        with pytest.raises(ConfigurationError, match="id.*value|value.*id"):
            toy_scenario(axes=[{"name": "f",
                                "values": [{"plan": "uce"}]}])

    def test_load_matrix_wraps_parse_errors_with_path(self, tmp_path):
        bad = tmp_path / "bad.yml"
        bad.write_text("a: {x: 1}\n")
        with pytest.raises(ConfigurationError, match="bad.yml.*line 1"):
            load_matrix(str(bad))

    def test_get_scenario_unknown_lists_known(self):
        with pytest.raises(ConfigurationError, match="fragmentation-aging"):
            get_scenario("no-such-scenario")

    def test_library_names_match_stems(self):
        scenarios = list_scenarios()
        assert len(scenarios) >= 10
        for scenario in scenarios:
            assert scenario.smoke is not None, scenario.name
            # every scenario (full and smoke) compiles against the
            # real experiment registry
            scenario.matrix().compile()
            scenario.matrix(smoke=True).compile()


class TestFrontDoorRuns:
    def test_second_run_is_all_cache_hits(self, cache, toy_spec):
        _, calls = toy_spec
        cfg = ScenarioConfig(scenario=toy_scenario(), workers=1)
        first = run_scenario(cfg, cache=cache)
        assert calls["n"] == 4
        assert first.n_cached == 0
        second = run_scenario(cfg, cache=cache)
        assert calls["n"] == 4  # nothing recomputed
        assert second.n_cached == 4
        counters = second.manifest["counters"]
        assert counters.get("experiment.cache_miss", 0) == 0
        assert counters["scenario.cells_cached"] == 4
        assert [r.rows for r in first.results] == \
               [r.rows for r in second.results]

    def test_report_byte_identical_fresh_vs_cached(self, cache, toy_spec):
        cfg = ScenarioConfig(scenario=toy_scenario(), workers=1)
        first = run_scenario(cfg, cache=cache)
        second = run_scenario(cfg, cache=cache)
        loaded = load_scenario(cfg, cache=cache)
        assert first.report() == second.report() == loaded.report()
        assert first.report_html() == second.report_html()

    def test_report_byte_identical_across_worker_counts(self, tmp_path):
        md = {}
        for workers in (1, 4):
            cache = ResultCache(str(tmp_path / f"w{workers}"))
            result = run_scenario(
                ScenarioConfig(scenario="fragmentation-aging", smoke=True,
                               workers=workers), cache=cache)
            md[workers] = result.report()
        assert md[1] == md[4]

    def test_select_filters_compose_with_cache(self, cache, toy_spec):
        _, calls = toy_spec
        full = ScenarioConfig(scenario=toy_scenario(), workers=1)
        run_scenario(full, cache=cache)
        pinned = run_scenario(
            ScenarioConfig(scenario=toy_scenario(), workers=1,
                           select={"mode": "b"}), cache=cache)
        assert [c.id for c in pinned.cells] == ["t-b-1", "t-b-2"]
        assert pinned.n_cached == 2  # the full run already paid for them
        assert calls["n"] == 4

    def test_cell_filter_and_errors(self, cache, toy_spec):
        picked = run_scenario(
            ScenarioConfig(scenario=toy_scenario(), workers=1,
                           cells=("t-a-2",)), cache=cache)
        assert [c.id for c in picked.cells] == ["t-a-2"]
        with pytest.raises(ConfigurationError, match="t-a-9"):
            run_scenario(ScenarioConfig(scenario=toy_scenario(),
                                        cells=("t-a-9",)), cache=cache)
        with pytest.raises(ConfigurationError, match="no axis"):
            run_scenario(ScenarioConfig(scenario=toy_scenario(),
                                        select={"bogus": "1"}), cache=cache)

    def test_smoke_replaces_axes(self, cache, toy_spec):
        result = run_scenario(
            ScenarioConfig(scenario=toy_scenario(), smoke=True, workers=1),
            cache=cache)
        assert [c.id for c in result.cells] == ["t-a-1"]

    def test_load_scenario_names_missing_cells(self, cache, toy_spec):
        with pytest.raises(ConfigurationError, match="t-a-1"):
            load_scenario(ScenarioConfig(scenario=toy_scenario()),
                          cache=cache)

    def test_scenario_cells_share_sweep_cache(self, cache, toy_spec):
        """A sweep cell and the scenario cell resolving to the same
        config are one cache entry — the one-engine contract."""
        from repro.experiments import run_experiment

        _, calls = toy_spec
        scenario = toy_scenario(
            axes=[{"name": "x", "values": [1]},
                  {"name": "mode", "values": [{"id": "a", "value": "a"}]}])
        run_experiment("toy-scn", overrides={"x": 1, "mode": "a"},
                       seed=3, cache=cache)
        assert calls["n"] == 1
        result = run_scenario(ScenarioConfig(scenario=scenario, workers=1),
                              cache=cache)
        assert calls["n"] == 1
        assert result.n_cached == 1

    def test_replica_seeds_offset(self, cache, toy_spec):
        scenario = toy_scenario(
            replicas=2,
            axes=[{"name": "x", "values": [1]},
                  {"name": "mode", "values": [{"id": "a", "value": "a"}]}])
        result = run_scenario(ScenarioConfig(scenario=scenario, workers=1),
                              cache=cache)
        assert [c.id for c in result.cells] == ["t-a-1-r0", "t-a-1-r1"]
        assert [r.rows[0]["seed"] for r in result.results] == [3, 4]


@pytest.mark.parametrize("name", [s.name for s in list_scenarios()])
def test_library_smoke_end_to_end(name, tmp_path):
    """Every bundled scenario's smoke variant runs, caches, reports."""
    cache = ResultCache(str(tmp_path / "cache"))
    cfg = ScenarioConfig(scenario=name, smoke=True, workers=1)
    first = run_scenario(cfg, cache=cache)
    assert first.results and all(r.rows for r in first.results)
    second = run_scenario(cfg, cache=cache)
    assert second.n_cached == len(second.cells)
    assert first.report() == second.report()
    assert "<table>" in second.report_html()


class TestCli:
    def _run(self, argv, tmp_path, capsys):
        from repro.cli import main

        main(argv + ["--cache-dir", str(tmp_path / "cli-cache")])
        return capsys.readouterr()

    def test_list(self, capsys):
        from repro.cli import main

        main(["scenario", "list"])
        out = capsys.readouterr().out
        assert "fragmentation-aging" in out
        main(["scenario", "list", "--json"])
        entries = json.loads(capsys.readouterr().out)
        assert {e["name"] for e in entries} >= {"fragmentation-aging",
                                                "uce-degrade"}

    def test_show_compiles_cells(self, capsys):
        from repro.cli import main

        main(["scenario", "show", "uce-degrade", "--smoke"])
        out = capsys.readouterr().out
        assert "ud-clean" in out and "ud-uce" in out
        main(["scenario", "show", "uce-degrade", "--smoke", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert [c["id"] for c in doc["cells"]] == ["ud-clean", "ud-uce"]

    def test_run_then_report_stdout_byte_identical(self, tmp_path, capsys):
        argv = ["scenario", "run", "fragmentation-aging", "--smoke",
                "--workers", "1"]
        first = self._run(argv, tmp_path, capsys)
        again = self._run(argv, tmp_path, capsys)
        assert first.out == again.out
        assert "cached" in again.err
        report = self._run(["scenario", "report", "fragmentation-aging",
                            "--smoke"], tmp_path, capsys)
        assert report.out == first.out

    def test_run_html_artifact(self, tmp_path, capsys):
        html = tmp_path / "grid.html"
        self._run(["scenario", "run", "fragmentation-aging", "--smoke",
                   "--workers", "1", "--html", str(html)], tmp_path, capsys)
        assert "<table>" in html.read_text()

    def test_run_matrix_file(self, tmp_path, capsys):
        matrix = tmp_path / "user.yml"
        matrix.write_text(
            "name: user-demo\n"
            "description: user matrix file\n"
            "experiment: workload-steady\n"
            "prefix: u\n"
            "axes:\n"
            "  - name: steps\n"
            "    values: [40]\n")
        out = self._run(["scenario", "run", "--matrix", str(matrix),
                         "--workers", "1", "--json"], tmp_path, capsys).out
        cells = json.loads(out)
        assert [c["cell"] for c in cells] == ["u-40"]

    def test_sweep_matrix_bridge_warns_and_delegates(self, tmp_path,
                                                     capsys):
        matrix = tmp_path / "user.yml"
        matrix.write_text(
            "name: user-demo\n"
            "description: user matrix file\n"
            "experiment: workload-steady\n"
            "prefix: u\n"
            "axes:\n"
            "  - name: steps\n"
            "    values: [40]\n")
        captured = self._run(["experiment", "sweep", "--matrix",
                              str(matrix), "--workers", "1"],
                             tmp_path, capsys)
        assert "scenario run" in captured.err
        assert "u-40" in captured.out

    def test_name_and_matrix_are_exclusive(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["scenario", "run", "fragmentation-aging",
                  "--matrix", "x.yml"])
        with pytest.raises(SystemExit):
            main(["scenario", "run"])


class TestScenarioModel:
    def test_frozen(self):
        scenario = toy_scenario()
        with pytest.raises(Exception):
            scenario.name = "other"

    def test_smoke_axis_must_name_a_scenario_axis(self):
        with pytest.raises(ConfigurationError, match="bogus"):
            toy_scenario(smoke={"axes": [{"name": "bogus",
                                          "values": [1]}]})

    def test_eager_validation_catches_bad_matrix(self):
        with pytest.raises(ConfigurationError, match="kebab"):
            toy_scenario(name="Bad_Name")

    def test_snapshot_is_json_stable(self):
        snap = toy_scenario().matrix().snapshot()
        assert json.dumps(snap)  # serialisable
        assert snap == toy_scenario().matrix().snapshot()
