"""Failure injection and container co-tenancy scenarios."""

import random

import pytest

from repro.errors import MigrationError, OutOfMemoryError
from repro.mm import (
    AllocSource,
    MigrateType,
    PageHandle,
    move_allocation,
)
from repro.sim.trace import TraceSpec, generate_addresses
from repro.units import PAGEBLOCK_FRAMES
from repro.workloads import Workload
from repro.workloads.services import CACHE_B, CI

from conftest import make_contiguitas, make_linux


class TestFailureInjection:
    def test_pin_mid_compaction_is_skipped_not_corrupted(self):
        """Pages pinned between compaction passes are left alone; the
        pass completes and bookkeeping stays exact."""
        k = make_linux(mem_mib=16, compaction_enabled=False)
        pages = [k.alloc_pages(0) for _ in range(k.mem.nframes)]
        rng = random.Random(1)
        for i, h in enumerate(pages):
            if i % 2 == 0:
                k.free_pages(h)
        live = [h for h in pages if not h.freed]
        # Inject: pin a random subset mid-scenario.
        for h in rng.sample(live, 30):
            k.pin_pages(h)
        pinned_pfns = {h.pfn for h in live if h.pinned}
        result = k.compactor.compact(k.buddy, k.handles,
                                     target_order=9)
        assert result.pages_skipped_unmovable >= 1
        # No pinned page moved.
        assert {h.pfn for h in live if h.pinned} == pinned_pfns
        k.check_consistency()

    def test_move_allocation_rejects_double_migration(self):
        k = make_linux(mem_mib=16)
        h = k.alloc_pages(0)
        k.mem.set_migrating(h.pfn, True)
        dst = k.buddy.take_free(0, MigrateType.MOVABLE)
        with pytest.raises(MigrationError):
            move_allocation(k.mem, h.pfn, dst)

    def test_evacuation_failure_leaves_partial_progress_consistent(self):
        """A blocked evacuation (pinned page mid-range) must not corrupt
        state: already-moved pages stay moved, the rest stay put."""
        k = make_linux(mem_mib=16)
        handles = [k.alloc_pages(0) for _ in range(100)]
        blocker = handles[50]
        k.pin_pages(blocker)
        block = k.mem.pageblock_of(blocker.pfn)
        start = block * PAGEBLOCK_FRAMES
        result = k.evacuator.evacuate(k.buddy, k.handles, start,
                                      start + PAGEBLOCK_FRAMES)
        assert not result.success
        assert result.blocked_by == blocker.pfn
        k.check_consistency()

    def test_oom_storm_recovers(self):
        """Repeated OOMs under a tight loop never wedge the allocator:
        freeing anything makes allocation work again."""
        k = make_contiguitas(mem_mib=8)
        live = []
        for _ in range(3):
            try:
                while True:
                    live.append(k.alloc_pages(0))
            except OutOfMemoryError:
                pass
            for _ in range(50):
                k.free_pages(live.pop())
            live.append(k.alloc_pages(0))  # must succeed again
        k.check_consistency()

    def test_unmovable_region_exhaustion_is_clean(self):
        """Unmovable OOM (movable region can't shrink further) raises
        without leaking partial expansions."""
        k = make_contiguitas(mem_mib=8)
        user = []
        try:
            while True:
                user.append(k.alloc_pages(0))
        except OutOfMemoryError:
            pass
        blocks_before = k.layout.unmovable_blocks
        with pytest.raises(OutOfMemoryError):
            for _ in range(10_000):
                k.alloc_pages(0, source=AllocSource.NETWORKING)
        k.check_consistency()
        assert k.layout.unmovable_blocks >= blocks_before


class TestCoTenancy:
    def test_two_services_share_one_kernel(self):
        """Containerised co-tenancy: two workloads churn on one machine;
        confinement and bookkeeping hold for the union."""
        import dataclasses

        k = make_contiguitas(mem_mib=128)
        small = dataclasses.replace(
            CACHE_B, anon_fraction=0.25, cache_fraction=0.1,
            cache_opportunistic=False)
        tenant_a = Workload(k, small, seed=1)
        tenant_b = Workload(k, dataclasses.replace(
            CI, anon_fraction=0.15, cache_fraction=0.1,
            cache_opportunistic=False), seed=2)
        tenant_a.start()
        tenant_b.start()
        for _ in range(150):
            tenant_a.step()
            tenant_b.step()
        assert k.confinement_violations() == 0
        k.check_consistency()
        # One tenant restarting does not disturb the other.
        tenant_a.stop()
        for _ in range(50):
            tenant_b.step()
        k.check_consistency()

    def test_tenant_restart_leaves_other_tenants_pages(self):
        import dataclasses

        k = make_linux(mem_mib=64)
        spec = dataclasses.replace(CACHE_B, anon_fraction=0.2,
                                   cache_fraction=0.05,
                                   cache_opportunistic=False)
        a = Workload(k, spec, seed=1)
        b = Workload(k, spec, seed=2)
        a.start()
        b.start()
        b_frames = b.anon_frames()
        a.stop(kernel_residue=0.0, keep_cache=False)
        assert b.anon_frames() == b_frames
        for chunk in b.anon_chunks:
            for h in b._chunk_handles(chunk):
                assert not h.freed


class TestZipfTraces:
    def test_zipf_heavier_head_than_uniform(self):
        spec = TraceSpec(footprint_bytes=1 << 30, zipf_exponent=1.5)
        addrs = generate_addresses(spec, 20_000, seed=0)
        pages = addrs // 4096
        head_share = (pages < 64).mean()
        assert head_share > 0.5

    def test_zipf_respects_footprint(self):
        spec = TraceSpec(footprint_bytes=1 << 20, zipf_exponent=1.2)
        addrs = generate_addresses(spec, 5000, seed=1)
        assert addrs.max() < (1 << 20)

    def test_zipf_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TraceSpec(footprint_bytes=4096, zipf_exponent=1.0)
