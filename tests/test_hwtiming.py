"""Event-driven migration traffic and lazy-invalidation windows."""

import pytest

from repro.core.hwext import AccessMode
from repro.sim import DEFAULT_PARAMS
from repro.sim.hwtiming import (
    lazy_invalidation_window,
    per_line_copy_cycles,
    simulate_migration_traffic,
    table_occupancy_bound,
)
from repro.units import LINES_PER_PAGE


class TestMigrationTraffic:
    def test_no_access_is_ever_blocked(self):
        result = simulate_migration_traffic(accesses_per_kilocycle=20.0)
        assert result.blocked_accesses == 0
        assert result.samples, "traffic should have been generated"
        # Worst case is one LLC access — never a migration-length stall.
        assert result.max_latency <= DEFAULT_PARAMS.l3_latency

    def test_copy_completes(self):
        result = simulate_migration_traffic()
        expected = LINES_PER_PAGE * per_line_copy_cycles(DEFAULT_PARAMS)
        assert result.copy_done_at == expected

    def test_redirection_splits_src_dst(self):
        result = simulate_migration_traffic(accesses_per_kilocycle=50.0,
                                            seed=3)
        served = {s.served_from for s in result.samples}
        assert "llc-src" in served
        assert "llc-dst" in served

    def test_cacheable_mode_cheaper_on_average(self):
        nc = simulate_migration_traffic(mode=AccessMode.NONCACHEABLE,
                                        accesses_per_kilocycle=50.0, seed=5)
        c = simulate_migration_traffic(mode=AccessMode.CACHEABLE,
                                       accesses_per_kilocycle=50.0, seed=5)
        assert c.mean_latency < nc.mean_latency

    def test_deterministic_by_seed(self):
        a = simulate_migration_traffic(seed=9)
        b = simulate_migration_traffic(seed=9)
        assert a.mean_latency == b.mean_latency


class TestLazyWindow:
    def test_window_scale_matches_paper(self):
        """§5.3: 40K kernel entries/s per core gives windows of up to
        ~25 µs; the mean of the max over 8 cores sits below that."""
        samples = lazy_invalidation_window(trials=300)
        us = [s.window_us() for s in samples]
        assert max(us) <= 25.0 + 1e-9
        assert 10.0 < sum(us) / len(us) < 25.0

    def test_faster_kernel_entries_shrink_window(self):
        slow = lazy_invalidation_window(
            kernel_entry_rate_per_second=40_000, trials=100)
        fast = lazy_invalidation_window(
            kernel_entry_rate_per_second=100_000, trials=100)
        mean = lambda xs: sum(x.window_cycles for x in xs) / len(xs)
        assert mean(fast) < mean(slow)

    def test_table_occupancy_tiny_at_very_high_rate(self):
        """§5.3's sizing argument: even 1000 migrations/s occupies a tiny
        fraction of one entry on average — 16 entries are generous."""
        occ = table_occupancy_bound(migrations_per_second=1000.0)
        assert occ < 0.2

    def test_occupancy_linear_in_rate(self):
        assert table_occupancy_bound(2000.0) == pytest.approx(
            2 * table_occupancy_bound(1000.0))
