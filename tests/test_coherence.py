"""MESI directory protocol and its integration with Contiguitas-HW."""

import pytest

from repro.core.hwext import HwMigrationEngine
from repro.errors import ConfigurationError, HardwareProtocolError
from repro.sim import Directory, MesiState
from repro.units import LINES_PER_PAGE


class TestMesiBasics:
    def test_cold_line_invalid(self):
        d = Directory()
        assert d.state(5, 0) is MesiState.INVALID

    def test_read_gives_shared(self):
        d = Directory()
        d.read(5, 0)
        d.read(5, 1)
        assert d.state(5, 0) is MesiState.SHARED
        assert d.state(5, 1) is MesiState.SHARED
        assert d.holders(5) == {0, 1}

    def test_write_gives_modified_and_invalidates(self):
        d = Directory()
        d.read(5, 0)
        d.read(5, 1)
        d.write(5, 2)
        assert d.state(5, 2) is MesiState.MODIFIED
        assert d.state(5, 0) is MesiState.INVALID
        assert d.state(5, 1) is MesiState.INVALID
        assert d.stats.invalidations_sent >= 2

    def test_read_downgrades_modified_with_writeback(self):
        d = Directory()
        d.write(5, 0)
        wb_before = d.stats.writebacks
        d.read(5, 1)
        assert d.stats.writebacks == wb_before + 1
        assert d.state(5, 0) is MesiState.SHARED
        assert d.state(5, 1) is MesiState.SHARED

    def test_repeat_write_by_owner_is_cheap(self):
        d = Directory()
        first = d.write(5, 0)
        again = d.write(5, 0)
        assert again < first

    def test_evict_modified_writes_back(self):
        d = Directory()
        d.write(5, 0)
        assert d.evict(5, 0) > 0
        assert d.state(5, 0) is MesiState.INVALID
        assert d.stats.writebacks == 1

    def test_evict_clean_is_free(self):
        d = Directory()
        d.read(5, 0)
        assert d.evict(5, 0) == 0

    def test_bus_rdx_clears_all_holders(self):
        d = Directory()
        d.read(7, 0)
        d.read(7, 1)
        d.write(8, 2)
        d.bus_rdx(7)
        d.bus_rdx(8)
        assert d.holders(7) == set()
        assert d.holders(8) == set()
        assert d.stats.bus_rdx == 2
        # The modified line was written back before invalidation.
        assert d.stats.writebacks == 1

    def test_core_bounds(self):
        d = Directory(ncores=2)
        with pytest.raises(HardwareProtocolError):
            d.read(1, 5)
        with pytest.raises(ConfigurationError):
            Directory(ncores=0)


class TestEngineWithDirectory:
    def test_copy_invalidates_private_copies(self):
        d = Directory()
        eng = HwMigrationEngine(directory=d)
        src, dst = 100, 200
        # Cores cache a couple of source lines before the migration.
        d.write(src * LINES_PER_PAGE + 3, 1)
        d.read(src * LINES_PER_PAGE + 9, 4)
        report = eng.migrate_page(src, dst)
        assert report.lines_copied == LINES_PER_PAGE
        assert d.holders(src * LINES_PER_PAGE + 3) == set()
        assert d.holders(src * LINES_PER_PAGE + 9) == set()
        # The dirty private line was written back by the BusRdX.
        assert d.stats.writebacks >= 1
        assert d.stats.bus_rdx == 2 * LINES_PER_PAGE

    def test_directory_costs_flow_into_report(self):
        base = HwMigrationEngine().migrate_page(100, 200).copy_cycles
        d = Directory()
        # Make many source lines dirty: the coherent copy pays writebacks.
        for line in range(0, LINES_PER_PAGE, 2):
            d.write(100 * LINES_PER_PAGE + line, 0)
        cost = HwMigrationEngine(directory=d).migrate_page(
            100, 200).copy_cycles
        assert cost > base
