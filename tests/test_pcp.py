"""Per-CPU page caches."""

import pytest

from repro.errors import ConfigurationError
from repro.mm import (
    BuddyAllocator,
    KernelConfig,
    LinuxKernel,
    MigrateType,
    PageblockTable,
    PhysicalMemory,
    VmStat,
)
from repro.mm.pcp import PerCpuPages
from repro.units import MiB


def make_pcp(mem_mib=8, **kwargs):
    mem = PhysicalMemory(MiB(mem_mib))
    buddy = BuddyAllocator(mem, PageblockTable(mem), VmStat(),
                           prefer="lifo")
    buddy.seed_free()
    return PerCpuPages(buddy, **kwargs)


class TestPerCpuPages:
    def test_alloc_refills_batch(self):
        pcp = make_pcp(batch=16)
        pfn = pcp.alloc(MigrateType.MOVABLE)
        assert pfn is not None
        assert pcp.refills == 1
        assert pcp.held_pages() == 15  # batch minus the allocated page

    def test_free_parks_on_list(self):
        pcp = make_pcp()
        pfn = pcp.alloc(MigrateType.MOVABLE)
        nr_free_before = pcp.buddy.nr_free
        pcp.free(pfn)
        assert pcp.buddy.nr_free == nr_free_before  # parked, not returned
        assert not pcp.buddy.mem.is_allocated(pfn)

    def test_spill_over_high(self):
        pcp = make_pcp(batch=8, high=8)
        pfns = [pcp.alloc(MigrateType.MOVABLE, cpu=0) for _ in range(9)]
        for pfn in pfns:
            pcp.free(pfn, cpu=0)
        assert pcp.spills >= 1

    def test_reuse_is_per_cpu(self):
        pcp = make_pcp(cpus=2, batch=4)
        a = pcp.alloc(MigrateType.MOVABLE, cpu=0)
        b = pcp.alloc(MigrateType.MOVABLE, cpu=1)
        pcp.free(a, cpu=0)
        # CPU 0 reuses its own freed page (LIFO within the CPU).
        assert a in pcp._lists[0][pcp.buddy.pageblocks.get(a)]
        assert b not in pcp._lists[0][MigrateType.MOVABLE]

    def test_round_robin_interleaves_cpus(self):
        pcp = make_pcp(cpus=4, batch=8)
        pfns = [pcp.alloc(MigrateType.MOVABLE) for _ in range(4)]
        # Four consecutive allocations came from four different batches.
        assert len({pfn // 8 for pfn in pfns}) >= 2

    def test_drain_returns_everything(self):
        pcp = make_pcp(batch=16)
        pcp.alloc(MigrateType.MOVABLE)
        drained = pcp.drain()
        assert drained == 15
        assert pcp.held_pages() == 0

    def test_higher_orders_bypass(self):
        pcp = make_pcp()
        pfn = pcp.buddy.alloc(3, MigrateType.MOVABLE)
        pcp.free(pfn)  # order-3: straight back to the buddy
        assert pcp.held_pages() == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_pcp(batch=0)
        with pytest.raises(ConfigurationError):
            make_pcp(batch=64, high=32)


class TestKernelIntegration:
    def test_kernel_consistency_with_pcp(self):
        k = LinuxKernel(KernelConfig(mem_bytes=MiB(16), pcp_enabled=True))
        handles = [k.alloc_pages(0) for _ in range(300)]
        for h in handles[::3]:
            k.free_pages(h)
        k.check_consistency()
        assert k.free_frames() == k.mem.free_frames()

    def test_slow_path_drains_pcp(self):
        k = LinuxKernel(KernelConfig(mem_bytes=MiB(4), pcp_enabled=True))
        handles = []
        from repro.errors import OutOfMemoryError
        try:
            while True:
                handles.append(k.alloc_pages(0))
        except OutOfMemoryError:
            pass
        # Everything allocatable was allocated: PCPs were drained rather
        # than hoarding invisible pages.
        assert k.free_frames() == 0

    def test_gigapage_path_drains_pcp(self):
        k = LinuxKernel(KernelConfig(mem_bytes=MiB(1026),
                                     pcp_enabled=True))
        k.alloc_pages(0)  # prime a PCP batch
        h = k.alloc_gigapage()
        assert h.nframes == 262144
        k.check_consistency()

    def test_contiguitas_pcp_respects_confinement(self):
        from repro.core import ContiguitasConfig, ContiguitasKernel
        from repro.mm import AllocSource

        k = ContiguitasKernel(ContiguitasConfig(mem_bytes=MiB(32),
                                                pcp_enabled=True))
        user = [k.alloc_pages(0) for _ in range(100)]
        net = [k.alloc_pages(0, source=AllocSource.NETWORKING)
               for _ in range(50)]
        assert all(not k.layout.in_unmovable(h.pfn) for h in user)
        assert all(k.layout.in_unmovable(h.pfn) for h in net)
        assert k.confinement_violations() == 0
        k.check_consistency()
