"""Runtime sanitizer (CONFIG_DEBUG_VM analogue): detection tests.

Each corruption test builds a healthy kernel, injects a specific class
of damage (double free, double alloc, migratetype drift, freelist /
occupancy divergence), and asserts the sanitizer raises the matching
typed error — with the offending PFN and, when a
:class:`~repro.analysis.sanitizer.FrameSanitizer` is attached, the
alloc/free history that led there.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.sanitizer import (
    ENV_FLAG,
    FrameSanitizer,
    debug_vm_enabled,
    verify_allocator,
    verify_kernel,
)
from repro.errors import (
    DoubleAllocError,
    DoubleFreeError,
    FreeOfUnallocatedError,
    FreelistDivergenceError,
    MigratetypeDriftError,
    SanitizerError,
    SimInvariantError,
)

from conftest import churn, make_linux


def make_debug_kernel(**kwargs):
    return make_linux(debug_vm=True, **kwargs)


def free_head_pfn(kernel) -> int:
    """Some PFN currently heading a free block on a buddy list."""
    for alloc in kernel.allocators():
        for lists in alloc.free_lists:
            for flist in lists.values():
                for pfn in flist:
                    return pfn
    raise AssertionError("no free blocks at all")


class TestEnablement:
    def test_config_flag_attaches_sanitizer(self):
        assert make_debug_kernel().mem.sanitizer is not None
        assert make_linux(debug_vm=False).mem.sanitizer is None

    def test_env_flag(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert debug_vm_enabled()
        assert make_linux().mem.sanitizer is not None
        monkeypatch.setenv(ENV_FLAG, "0")
        assert not debug_vm_enabled()
        assert make_linux().mem.sanitizer is None

    def test_config_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert make_linux(debug_vm=False).mem.sanitizer is None
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert make_debug_kernel().mem.sanitizer is not None

    def test_falsey_env_values(self, monkeypatch):
        for value in ("", "0", "off", "no", "FALSE"):
            monkeypatch.setenv(ENV_FLAG, value)
            assert not debug_vm_enabled()
        monkeypatch.setenv(ENV_FLAG, "yes")
        assert debug_vm_enabled()


class TestHealthyKernel:
    def test_churn_stays_consistent(self):
        kernel = make_debug_kernel()
        churn(kernel, random.Random(7), steps=800)
        verify_kernel(kernel)
        assert kernel.mem.sanitizer.events > 0

    def test_verify_method_delegates(self):
        kernel = make_debug_kernel()
        kernel.mem.sanitizer.verify(kernel)

    def test_check_consistency_routes_through_sanitizer(self):
        kernel = make_debug_kernel()
        churn(kernel, random.Random(8), steps=300)
        kernel.check_consistency()
        for alloc in kernel.allocators():
            verify_allocator(alloc)


class TestDoubleFree:
    def test_free_pages_twice_raises(self):
        kernel = make_debug_kernel()
        handle = kernel.alloc_pages(0)
        kernel.free_pages(handle)
        with pytest.raises(DoubleFreeError) as exc:
            kernel.free_pages(handle)
        assert exc.value.pfn == handle.pfn

    def test_mark_free_twice_carries_history(self):
        kernel = make_debug_kernel()
        handle = kernel.alloc_pages(0)
        pfn = handle.pfn
        kernel.mem.mark_free(pfn)
        with pytest.raises(DoubleFreeError) as exc:
            kernel.mem.mark_free(pfn)
        assert exc.value.pfn == pfn
        actions = [action for action, _, _ in exc.value.history]
        assert actions[-1] == "free"
        assert "alloc" in actions
        assert "history:" in str(exc.value)

    def test_free_of_never_allocated_frame(self):
        kernel = make_debug_kernel()
        free_pfn = free_head_pfn(kernel)
        with pytest.raises(FreeOfUnallocatedError) as exc:
            kernel.mem.mark_free(free_pfn)
        assert exc.value.pfn == free_pfn

    def test_without_sanitizer_still_typed(self):
        # The typed checks are always on; only the history needs the
        # sanitizer, so a production kernel degrades gracefully.
        kernel = make_linux(debug_vm=False)
        handle = kernel.alloc_pages(0)
        kernel.mem.mark_free(handle.pfn)
        with pytest.raises(SanitizerError) as exc:
            kernel.mem.mark_free(handle.pfn)
        assert exc.value.history == ()


class TestDoubleAlloc:
    def test_mark_allocated_over_live_order0(self):
        kernel = make_debug_kernel()
        handle = kernel.alloc_pages(0)
        info = kernel.mem.allocation_info(handle.pfn)
        with pytest.raises(DoubleAllocError) as exc:
            kernel.mem.mark_allocated(handle.pfn, 0, info.migratetype,
                                      info.source, birth=0)
        assert exc.value.pfn == handle.pfn
        assert exc.value.history[-1][0] == "alloc"

    def test_mark_allocated_overlapping_high_order(self):
        kernel = make_debug_kernel()
        handle = kernel.alloc_pages(0)
        info = kernel.mem.allocation_info(handle.pfn)
        base = handle.pfn & ~0b11  # order-2 block containing the live pfn
        with pytest.raises(DoubleAllocError):
            kernel.mem.mark_allocated(base, 2, info.migratetype,
                                      info.source, birth=0)


class TestCorruptionSweeps:
    def test_migratetype_drift_detected(self):
        kernel = make_debug_kernel()
        churn(kernel, random.Random(9), steps=200)
        pfn = free_head_pfn(kernel)
        kernel.mem.free_mt[pfn] = (int(kernel.mem.free_mt[pfn]) + 1) % 3
        with pytest.raises(MigratetypeDriftError) as exc:
            kernel.check_consistency()
        assert exc.value.pfn == pfn

    def test_nr_free_drift_detected(self):
        kernel = make_debug_kernel()
        alloc = kernel.allocators()[0]
        alloc.nr_free += 1
        with pytest.raises(FreelistDivergenceError):
            verify_allocator(alloc)

    def test_cleared_occupancy_bit_detected(self):
        kernel = make_debug_kernel()
        alloc = kernel.allocators()[0]
        for order, lists in enumerate(alloc.free_lists):
            for mt, flist in lists.items():
                if flist:
                    alloc._occ[int(mt)] &= ~(1 << order)
                    with pytest.raises(FreelistDivergenceError) as exc:
                        verify_allocator(alloc)
                    assert "occupancy" in str(exc.value)
                    return
        raise AssertionError("no free blocks at all")

    def test_allocated_frame_on_free_list_detected(self):
        kernel = make_debug_kernel()
        handle = kernel.alloc_pages(0)
        pfn = handle.pfn
        alloc = kernel.allocator_for(pfn)
        # Forge a freelist entry pointing at the live frame.
        mt = next(iter(alloc.free_lists[0]))
        alloc.free_lists[0][mt].add(pfn)
        alloc._occ[int(mt)] |= 1
        with pytest.raises(FreelistDivergenceError):
            verify_allocator(alloc)

    def test_history_is_bounded(self):
        san = FrameSanitizer(history_len=4)
        for tick in range(10):
            san.note_alloc(1, 0, tick)
        assert len(san.history(1)) == 4
        assert san.history(1)[0][2] == 6  # oldest retained event


class TestErrorTypes:
    def test_hierarchy(self):
        for err in (DoubleAllocError, DoubleFreeError,
                    FreeOfUnallocatedError, MigratetypeDriftError,
                    FreelistDivergenceError):
            assert issubclass(err, SanitizerError)
        assert issubclass(SanitizerError, SimInvariantError)

    def test_message_carries_pfn_and_history(self):
        err = DoubleFreeError("frame already freed", pfn=42,
                              history=(("alloc", 0, 10), ("free", 0, 42)))
        text = str(err)
        assert "pfn 42" in text
        assert "alloc@10:o0 -> free@42:o0" in text
        assert err.pfn == 42
        assert err.history == (("alloc", 0, 10), ("free", 0, 42))
