"""Illuminator baseline: strict pageblock separation and its limits."""

import pytest

from repro.core import IlluminatorKernel
from repro.mm import AllocSource, KernelConfig, MigrateType
from repro.mm import vmstat as ev
from repro.units import MiB, PAGEBLOCK_FRAMES
from repro.analysis import movable_potential, unmovable_block_fraction


def make_illuminator(mem_mib=32, **kwargs):
    return IlluminatorKernel(KernelConfig(mem_bytes=MiB(mem_mib), **kwargs))


def test_fallback_only_takes_free_pageblocks():
    k = make_illuminator()
    # First unmovable allocation converts one whole free pageblock.
    h = k.alloc_pages(0, source=AllocSource.SLAB)
    block = k.mem.pageblock_of(h.pfn)
    assert k.pageblocks.get_block(block) is MigrateType.UNMOVABLE
    assert k.stat[ev.PAGEBLOCK_STEAL] == 1


def test_no_mixing_within_pageblocks():
    """Illuminator's guarantee: a 2 MiB block is never shared by movable
    and unmovable allocations."""
    import random

    from conftest import churn

    k = make_illuminator()
    churn(k, random.Random(0), steps=2000, unmovable_fraction=0.3,
          pin_fraction=0.0)
    unmovable = k.mem.unmovable_mask()
    movable = k.mem.allocated_mask() & ~unmovable
    for block in range(k.mem.npageblocks):
        s = slice(block * PAGEBLOCK_FRAMES, (block + 1) * PAGEBLOCK_FRAMES)
        assert not (unmovable[s].any() and movable[s].any()), block


def test_unmovable_exhaustion_without_free_pageblock():
    """The Illuminator limitation: when no fully free pageblock remains,
    an unmovable allocation fails even if plenty of scattered free
    4 KiB pages exist inside movable blocks."""
    from repro.errors import OutOfMemoryError

    k = make_illuminator(mem_mib=8, compaction_enabled=False)
    # Fill all memory, then free everything except one page per block:
    # plenty of free 4 KiB pages, but no block is fully free.
    holders = [k.alloc_pages(0) for _ in range(k.mem.nframes)]
    per_block = {}
    for h in holders:
        per_block.setdefault(k.mem.pageblock_of(h.pfn), h)
    for h in holders:
        if per_block[k.mem.pageblock_of(h.pfn)] is not h:
            k.free_pages(h)
    assert k.free_frames() > k.mem.nframes // 2
    with pytest.raises(OutOfMemoryError):
        k.alloc_pages(0, source=AllocSource.SLAB)


def test_contiguity_capped_at_pageblock():
    """Illuminator keeps blocks pure but still scatters unmovable blocks,
    capping recoverable contiguity at 2 MiB (paper §1)."""
    import random

    from conftest import churn

    k = make_illuminator()
    # Moderate-utilisation churn: Illuminator needs whole free pageblocks
    # for kernel fallbacks, so memory-full churn would OOM it (which is
    # itself part of the paper's critique).
    churn(k, random.Random(3), steps=3000, unmovable_fraction=0.3,
          pin_fraction=0.0)
    pot_2m = movable_potential(k.mem, PAGEBLOCK_FRAMES)
    pot_32m = movable_potential(k.mem, 16 * PAGEBLOCK_FRAMES)
    # Pure blocks: 2 MiB potential stays decent, 32 MiB collapses
    # because unmovable blocks pepper the address space.
    assert pot_2m > 0.5
    assert pot_32m < pot_2m


def test_pinning_still_pollutes():
    """Illuminator has no answer to dynamic pinning: a pinned page
    freezes its (previously movable) block."""
    k = make_illuminator()
    h = k.alloc_pages(0)
    k.pin_pages(h)
    block = k.mem.pageblock_of(h.pfn)
    assert k.pageblocks.get_block(block) is MigrateType.MOVABLE
    assert unmovable_block_fraction(k.mem, PAGEBLOCK_FRAMES) > 0
