"""Unit conversions and constants."""

import pytest

from repro import units


def test_frame_size_is_4k():
    assert units.FRAME_SIZE == 4096


def test_pageblock_is_2mib():
    assert units.PAGEBLOCK_FRAMES * units.FRAME_SIZE == 2 * 1024 * 1024


def test_max_order_is_pageblock_order():
    # Design invariant: buddy blocks never straddle pageblocks.
    assert units.MAX_ORDER == units.PAGEBLOCK_ORDER


def test_gigapage_frames():
    assert units.GIGAPAGE_FRAMES == 262144


def test_size_helpers():
    assert units.KiB(4) == 4096
    assert units.MiB(2) == 2 * 1024 * 1024
    assert units.GiB(1) == 1 << 30


def test_bytes_frames_roundtrip():
    assert units.bytes_to_frames(units.frames_to_bytes(123)) == 123


def test_bytes_to_frames_rejects_partial_frames():
    with pytest.raises(ValueError):
        units.bytes_to_frames(4097)


def test_order_of():
    assert units.order_of(1) == 0
    assert units.order_of(512) == 9


@pytest.mark.parametrize("bad", [0, 3, 511, -4])
def test_order_of_rejects_non_powers(bad):
    with pytest.raises(ValueError):
        units.order_of(bad)


def test_human_size():
    assert units.human_size(512) == "512B"
    assert units.human_size(2 << 20) == "2.0MiB"
    assert units.human_size(3 * (1 << 30)) == "3.0GiB"
