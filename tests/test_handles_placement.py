"""Handle registry lifecycle and the placement policy."""

import pytest

from repro.core import PlacementPolicy
from repro.errors import DoubleAllocError
from repro.mm import AllocSource, HandleRegistry, MigrateType, PageHandle


def handle(pfn=0, order=0):
    return PageHandle(pfn, order, MigrateType.MOVABLE, AllocSource.USER, 0)


class TestPageHandle:
    def test_nframes(self):
        assert handle(order=3).nframes == 8

    def test_repr_states(self):
        h = handle()
        assert "live" in repr(h)
        h.pinned = True
        assert "pinned" in repr(h)
        h.freed = True
        assert "freed" in repr(h)


class TestHandleRegistry:
    def test_register_and_get(self):
        reg = HandleRegistry()
        h = reg.register(handle(pfn=10))
        assert reg.get(10) is h
        assert 10 in reg
        assert len(reg) == 1

    def test_duplicate_pfn_raises_typed(self):
        reg = HandleRegistry()
        reg.register(handle(pfn=10))
        with pytest.raises(DoubleAllocError):
            reg.register(handle(pfn=10))

    def test_on_free_marks_and_removes(self):
        reg = HandleRegistry()
        h = reg.register(handle(pfn=10))
        reg.on_free(h)
        assert h.freed
        assert 10 not in reg

    def test_relocate_moves_key_and_pfn(self):
        reg = HandleRegistry()
        h = reg.register(handle(pfn=10))
        reg.relocate(10, 99)
        assert h.pfn == 99
        assert reg.get(99) is h
        assert 10 not in reg

    def test_live_handles(self):
        reg = HandleRegistry()
        a = reg.register(handle(pfn=1))
        b = reg.register(handle(pfn=2))
        assert set(reg.live_handles()) == {a, b}


class TestPlacementPolicy:
    def test_default_bias_away_from_border(self):
        policy = PlacementPolicy()
        assert policy.direction(AllocSource.NETWORKING) == "high"
        assert policy.direction(AllocSource.SLAB) == "high"
        assert policy.direction(AllocSource.KERNEL_CODE) == "high"

    def test_pin_migrations_next_to_border(self):
        policy = PlacementPolicy()
        assert policy.direction(AllocSource.USER,
                                pin_migration=True) == "low"

    def test_disabled_returns_none(self):
        policy = PlacementPolicy(bias_enabled=False)
        assert policy.direction(AllocSource.NETWORKING) is None
        assert policy.direction(AllocSource.USER, pin_migration=True) is None
