"""Kernel allocation sources: slab, networking, page tables, filesystem."""

import random

import pytest

from repro.errors import ReproError
from repro.kalloc import (
    FsBufferPool,
    NetworkBufferPool,
    NetworkQueueConfig,
    PageTableAllocator,
    SOURCE_MIX_META,
    SlabAllocator,
    SlabCache,
    SourceMix,
    unmovable_breakdown,
)
from repro.kalloc.sources import unmovable_fractions
from repro.mm import AllocSource, MigrateType
from repro.units import PAGEBLOCK_FRAMES

from conftest import make_linux


class TestSlab:
    def test_objects_pack_into_one_slab(self, linux):
        cache = SlabCache(linux, "test-256", 256)
        refs = [cache.alloc_object() for _ in range(8)]
        assert cache.nr_slabs == 1
        assert cache.total_objects == 8

    def test_slab_page_is_unmovable_source(self, linux):
        cache = SlabCache(linux, "test-64", 64)
        cache.alloc_object()
        assert linux.mem.unmovable_mask().any()
        counts = unmovable_breakdown(linux.mem)
        assert AllocSource.SLAB in counts

    def test_reclaimable_cache_uses_reclaimable_type(self, linux):
        cache = SlabCache(linux, "dentry", 192, reclaimable=True)
        assert cache.migratetype is MigrateType.RECLAIMABLE

    def test_empty_slab_freed_back(self, linux):
        cache = SlabCache(linux, "test-1k", 1024)
        refs = [cache.alloc_object() for _ in range(3)]
        for ref in refs:
            cache.free_object(ref)
        assert cache.nr_slabs == 0
        assert linux.free_frames() == linux.mem.nframes

    def test_partial_slab_keeps_page_alive(self, linux):
        """The straggler effect: one live object pins the whole slab."""
        cache = SlabCache(linux, "test-64", 64)
        refs = [cache.alloc_object() for _ in range(cache.objects_per_slab)]
        for ref in refs[1:]:
            cache.free_object(ref)
        assert cache.nr_slabs == 1
        assert cache.frames_in_use() >= 1

    def test_new_slab_when_full(self, linux):
        cache = SlabCache(linux, "test-64", 64)
        n = cache.objects_per_slab + 1
        for _ in range(n):
            cache.alloc_object()
        assert cache.nr_slabs == 2

    def test_cross_cache_free_rejected(self, linux):
        a = SlabCache(linux, "a", 64)
        b = SlabCache(linux, "b", 64)
        ref = a.alloc_object()
        with pytest.raises(ReproError):
            b.free_object(ref)

    def test_bad_object_size_rejected(self, linux):
        with pytest.raises(ReproError):
            SlabCache(linux, "bad", 0)

    def test_allocator_registry(self, linux):
        slab = SlabAllocator(linux)
        assert slab["kmalloc-64"].object_size == 64
        slab["inode"].alloc_object()
        assert slab.frames_in_use() >= 1


class TestNetBuf:
    def test_bring_up_allocates_rings(self, linux):
        pool = NetworkBufferPool(linux, NetworkQueueConfig(
            nr_queues=2, ring_frames_per_queue=8))
        pool.bring_up()
        assert pool.frames_in_use() == 16
        counts = unmovable_breakdown(linux.mem)
        assert counts[AllocSource.NETWORKING] == 16

    def test_tear_down_frees_everything(self, linux):
        pool = NetworkBufferPool(linux, NetworkQueueConfig(
            nr_queues=2, ring_frames_per_queue=8))
        pool.bring_up()
        pool.tear_down()
        assert pool.frames_in_use() == 0
        assert linux.free_frames() == linux.mem.nframes

    def test_transient_buffer_roundtrip(self, linux):
        pool = NetworkBufferPool(linux)
        buf = pool.alloc_buffer()
        assert buf.source is AllocSource.NETWORKING
        pool.free_buffer(buf)
        assert linux.free_frames() == linux.mem.nframes

    def test_pinned_buffer_is_user_memory_pinned(self, linux):
        pool = NetworkBufferPool(linux)
        buf = pool.alloc_buffer(pinned=True)
        assert buf.source is AllocSource.USER
        assert buf.pinned
        pool.free_buffer(buf)
        assert linux.free_frames() == linux.mem.nframes


class TestPageTables:
    def test_no_tables_when_nothing_mapped(self, linux):
        pt = PageTableAllocator(linux)
        assert pt.nr_tables == 0

    def test_tables_grow_with_mapping(self, linux):
        pt = PageTableAllocator(linux)
        pt.on_map(512)  # one leaf table
        assert pt.nr_tables >= 1
        n1 = pt.nr_tables
        pt.on_map(512 * 10)
        assert pt.nr_tables > n1

    def test_huge_mappings_need_fewer_tables(self, linux):
        pt4k = PageTableAllocator(linux)
        pt4k.on_map(512 * 512, leaf_level=0)
        pt2m = PageTableAllocator(linux)
        pt2m.on_map(512 * 512, leaf_level=1)
        assert pt2m.nr_tables < pt4k.nr_tables

    def test_unmap_releases_tables(self, linux):
        pt = PageTableAllocator(linux)
        pt.on_map(512 * 8)
        pt.on_unmap(512 * 8)
        assert pt.nr_tables == 0

    def test_tables_are_unmovable(self, linux):
        pt = PageTableAllocator(linux)
        pt.on_map(512)
        assert AllocSource.PAGETABLE in unmovable_breakdown(linux.mem)


class TestFsBuffers:
    def test_burst_frees_most(self, linux):
        fs = FsBufferPool(linux, straggler_probability=0.0)
        fs.io_burst(nbuffers=8)
        assert fs.frames_in_use() == 0
        assert linux.free_frames() == linux.mem.nframes

    def test_stragglers_accumulate(self, linux):
        fs = FsBufferPool(linux, straggler_probability=1.0)
        fs.io_burst(nbuffers=4)
        assert fs.frames_in_use() == 4

    def test_retire_stragglers(self, linux):
        fs = FsBufferPool(linux, straggler_probability=1.0)
        fs.io_burst(nbuffers=8)
        fs.retire_stragglers(fraction=0.5)
        assert fs.frames_in_use() == 4


class TestSourceMix:
    def test_meta_mix_matches_paper(self):
        assert SOURCE_MIX_META.networking == pytest.approx(0.73)
        assert SOURCE_MIX_META.slab == pytest.approx(0.12)

    def test_mix_must_sum_to_one(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            SourceMix(0.9, 0.2, 0.1, 0.1, 0.1)

    def test_fractions_sum_to_one(self, linux):
        pool = NetworkBufferPool(linux)
        slab = SlabAllocator(linux)
        pool.alloc_buffer()
        slab["kmalloc-64"].alloc_object()
        fractions = unmovable_fractions(linux.mem)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_machine_has_no_breakdown(self, linux):
        assert unmovable_fractions(linux.mem) == {}
