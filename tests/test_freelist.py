"""FreeList: ordered extraction with lazy-deletion heaps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm.freelist import FreeList


def test_empty_behaviour():
    fl = FreeList()
    assert len(fl) == 0
    assert not fl
    with pytest.raises(KeyError):
        fl.pop_lowest()
    with pytest.raises(KeyError):
        fl.pop_highest()
    with pytest.raises(KeyError):
        fl.peek_lowest()


def test_add_and_membership():
    fl = FreeList()
    fl.add(10)
    fl.add(5)
    assert 10 in fl
    assert 5 in fl
    assert 7 not in fl
    assert len(fl) == 2


def test_add_is_idempotent():
    fl = FreeList()
    fl.add(3)
    fl.add(3)
    assert len(fl) == 1
    assert fl.pop_lowest() == 3
    assert len(fl) == 0


def test_pop_lowest_order():
    fl = FreeList()
    for pfn in [30, 10, 20]:
        fl.add(pfn)
    assert [fl.pop_lowest() for _ in range(3)] == [10, 20, 30]


def test_pop_highest_order():
    fl = FreeList()
    for pfn in [30, 10, 20]:
        fl.add(pfn)
    assert [fl.pop_highest() for _ in range(3)] == [30, 20, 10]


def test_discard_then_pop_skips_stale_entries():
    fl = FreeList()
    for pfn in [1, 2, 3]:
        fl.add(pfn)
    assert fl.discard(1)
    assert not fl.discard(1)  # already gone
    assert fl.pop_lowest() == 2


def test_peek_does_not_remove():
    fl = FreeList()
    fl.add(42)
    assert fl.peek_lowest() == 42
    assert fl.peek_highest() == 42
    assert 42 in fl


def test_readd_after_discard():
    fl = FreeList()
    fl.add(7)
    fl.discard(7)
    fl.add(7)
    assert fl.pop_highest() == 7


@settings(max_examples=200)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 100))))
def test_matches_reference_set(ops):
    """Property: FreeList behaves like a sorted set under add/discard."""
    fl = FreeList()
    ref: set[int] = set()
    for is_add, pfn in ops:
        if is_add:
            fl.add(pfn)
            ref.add(pfn)
        else:
            assert fl.discard(pfn) == (pfn in ref)
            ref.discard(pfn)
        assert len(fl) == len(ref)
        if ref:
            assert fl.peek_lowest() == min(ref)
            assert fl.peek_highest() == max(ref)
    drained = []
    while fl:
        drained.append(fl.pop_lowest())
    assert drained == sorted(ref)
