"""Free lists: intrusive array-backed lists vs the legacy reference.

Behavioural tests run against both representations; the differential
fuzzer (the transition's acceptance property) drives random op
sequences through both at once and demands identical pop orders and
lengths on every mode, including FIFO.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FreelistDivergenceError
from repro.mm.freelist import (
    _COMPACT_MIN,
    FreeList,
    FreelistStore,
    LegacyFreeList,
)

IMPLS = [FreeList, LegacyFreeList]


@pytest.fixture(params=IMPLS, ids=["intrusive", "legacy"])
def make_list(request):
    return request.param


class TestBehaviour:
    def test_empty_behaviour(self, make_list):
        fl = make_list()
        assert len(fl) == 0
        assert not fl
        with pytest.raises(KeyError):
            fl.pop_lowest()
        with pytest.raises(KeyError):
            fl.pop_highest()
        with pytest.raises(KeyError):
            fl.peek_lowest()

    def test_add_and_membership(self, make_list):
        fl = make_list()
        fl.add(10)
        fl.add(5)
        assert 10 in fl
        assert 5 in fl
        assert 7 not in fl
        assert len(fl) == 2

    def test_add_is_idempotent(self, make_list):
        fl = make_list()
        fl.add(3)
        fl.add(3)
        assert len(fl) == 1
        assert fl.pop_lowest() == 3
        assert len(fl) == 0

    def test_pop_lowest_order(self, make_list):
        fl = make_list()
        for pfn in [30, 10, 20]:
            fl.add(pfn)
        assert [fl.pop_lowest() for _ in range(3)] == [10, 20, 30]

    def test_pop_highest_order(self, make_list):
        fl = make_list()
        for pfn in [30, 10, 20]:
            fl.add(pfn)
        assert [fl.pop_highest() for _ in range(3)] == [30, 20, 10]

    def test_temporal_pops(self, make_list):
        fl = make_list()
        for pfn in [30, 10, 20]:
            fl.add(pfn)
        assert fl.pop_lifo() == 20
        assert fl.pop_fifo() == 30
        assert fl.pop_lifo() == 10

    def test_discard_then_pop_skips_stale_entries(self, make_list):
        fl = make_list()
        for pfn in [1, 2, 3]:
            fl.add(pfn)
        assert fl.discard(1)
        assert not fl.discard(1)  # already gone
        assert fl.pop_lowest() == 2

    def test_peek_does_not_remove(self, make_list):
        fl = make_list()
        fl.add(42)
        assert fl.peek_lowest() == 42
        assert fl.peek_highest() == 42
        assert 42 in fl

    def test_readd_after_discard(self, make_list):
        fl = make_list()
        fl.add(7)
        fl.discard(7)
        fl.add(7)
        assert fl.pop_highest() == 7

    def test_readd_takes_fifo_position_from_readd(self, make_list):
        """The normalisation both representations now share: a member
        discarded and re-added queues at its re-add position (the lazy
        legacy path used to revive the original position)."""
        fl = make_list()
        for pfn in [1, 2, 3]:
            fl.add(pfn)
        fl.discard(1)
        fl.add(1)
        assert fl.pop_fifo() == 2
        assert fl.pop_fifo() == 3
        assert fl.pop_fifo() == 1

    def test_iteration_is_insertion_ordered(self, make_list):
        fl = make_list()
        for pfn in [9, 2, 5]:
            fl.add(pfn)
        fl.discard(2)
        fl.add(2)
        assert list(fl) == [9, 5, 2]

    def test_pop_many_matches_scalar_pops(self, make_list):
        for mode in ("lifo", "fifo"):
            a, b = make_list(), make_list()
            for pfn in [4, 9, 1, 7, 3]:
                a.add(pfn)
                b.add(pfn)
            bulk = getattr(a, f"pop_many_{mode}")(3).tolist()
            scalar = [getattr(b, f"pop_{mode}")() for _ in range(3)]
            assert bulk == scalar
            assert len(a) == len(b) == 2

    def test_churn_through_compaction_preserves_order(self, make_list):
        """Discarding past the compaction trigger must not disturb the
        address-ordered pop sequence."""
        fl = make_list()
        n = 4 * _COMPACT_MIN
        for pfn in range(n):
            fl.add(pfn)
        fl.peek_lowest()  # arm the intrusive list's heaps before churn
        for pfn in range(0, n, 2):  # force > _COMPACT_MIN removals
            fl.discard(pfn)
        assert [fl.pop_lowest() for _ in range(len(fl))] == \
            list(range(1, n, 2))


class TestIntrusive:
    def test_store_shared_across_lists(self):
        store = FreelistStore(64)
        a, b = store.new_list(), store.new_list()
        a.add(3)
        b.add(5)
        assert 3 in a and 3 not in b
        with pytest.raises(FreelistDivergenceError):
            b.add(3)  # a frame lives on at most one list per store
        a.discard(3)
        b.add(3)
        assert 3 in b

    def test_standalone_store_grows_on_demand(self):
        fl = FreeList()
        fl.add(100_000)  # far past the default capacity
        assert 100_000 in fl
        assert fl.pop_lifo() == 100_000

    def test_extend_bulk_append(self):
        fl = FreeList()
        fl.add(999)
        fl.extend([5, 6, 7])
        assert list(fl) == [999, 5, 6, 7]
        assert fl.pop_lifo() == 7
        assert fl.pop_fifo() == 999
        fl.check_invariants()

    def test_extend_rejects_linked_frames(self):
        store = FreelistStore(32)
        a, b = store.new_list(), store.new_list()
        a.add(4)
        with pytest.raises(FreelistDivergenceError):
            b.extend([3, 4, 5])

    def test_temporal_only_list_has_no_heap_bookkeeping(self):
        fl = FreeList()
        for i in range(1000):
            fl.add(i)
            fl.discard(i)
        assert fl._min_heap is None  # zero address-order overhead
        fl.add(1)
        assert fl.peek_lowest() == 1  # first address op builds heaps
        assert fl._min_heap is not None
        fl.pop_lowest()
        assert fl._min_heap is None  # emptied list drops them again

    def test_heap_staleness_bounded_under_churn(self):
        fl = FreeList()
        fl.add(0)
        fl.peek_lowest()  # enter address mode
        live_span = 512
        for i in range(40_000):
            fl.add(i % live_span)
            fl.discard((i * 7 + 3) % live_span)
        live = len(fl)
        slack = max(_COMPACT_MIN, live) + 1
        assert fl.stale_entries() <= 2 * slack
        fl.check_invariants()

    def test_check_invariants_catches_corruption(self):
        fl = FreeList()
        for pfn in [1, 2, 3]:
            fl.add(pfn)
        fl.check_invariants()
        fl._store.next_mv[1] = 3  # sever the chain behind the count
        with pytest.raises(FreelistDivergenceError):
            fl.check_invariants()


class TestLegacy:
    def test_churn_keeps_structures_bounded(self):
        """Heavy add/discard churn must not leak stale heap/queue
        entries: internal structures stay within a constant factor of
        the live set."""
        fl = LegacyFreeList()
        live_span = 512
        for i in range(40_000):
            fl.add(i % live_span)
            fl.discard((i * 7 + 3) % live_span)
        live = len(fl)
        assert live <= live_span
        # Between compactions at most max(_COMPACT_MIN, live) removals
        # accumulate, each leaving one stale entry per structure.
        slack = max(_COMPACT_MIN, live) + 1
        assert len(fl._min_heap) <= live + slack
        assert len(fl._max_heap) <= live + slack
        assert len(fl._queue) <= live + slack
        assert fl.stale_entries() <= 3 * slack

    def test_compact_zeroes_stale_entries(self):
        """Regression (stale-accounting drift): a full rebuild used to
        keep both the first and last queue occurrence of a live member,
        leaving ``stale_entries() > 0`` immediately after ``_compact``.
        The rebuilt queue now holds exactly one live entry per member."""
        fl = LegacyFreeList()
        for pfn in range(2 * _COMPACT_MIN):
            fl.add(pfn)
        # Discard-then-re-add members so the queue accumulates
        # duplicate occurrences, then force the rebuild.
        for pfn in range(0, 2 * _COMPACT_MIN, 2):
            fl.discard(pfn)
            fl.add(pfn)
        fl._compact()
        assert fl.stale_entries() == 0
        fl.check_invariants()
        # And the rebuild preserved every pop mode's view.
        assert fl.pop_fifo() == 1
        assert fl.pop_lifo() == 2 * _COMPACT_MIN - 2
        assert fl.pop_lowest() == 0


@settings(max_examples=150)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 40)),
                max_size=120))
def test_compaction_is_behaviour_preserving(ops):
    """Property: forcing a rebuild after every operation never changes
    the pop sequences (address order and LIFO) on either
    representation."""
    for impl in IMPLS:
        plain = impl()
        compacted = impl()
        for op, pfn in ops:
            if op == 0:
                plain.add(pfn)
                compacted.add(pfn)
            elif op == 1:
                assert plain.discard(pfn) == compacted.discard(pfn)
            elif op == 2 and plain:
                assert plain.pop_lifo() == compacted.pop_lifo()
            elif op == 3 and plain:
                assert plain.pop_highest() == compacted.pop_highest()
            compacted._compact()
            assert len(plain) == len(compacted)
        while plain:
            assert plain.pop_lowest() == compacted.pop_lowest()
        assert not compacted


@settings(max_examples=200)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 100))))
def test_matches_reference_set(ops):
    """Property: both representations behave like a sorted set under
    add/discard."""
    for impl in IMPLS:
        fl = impl()
        ref: set[int] = set()
        for is_add, pfn in ops:
            if is_add:
                fl.add(pfn)
                ref.add(pfn)
            else:
                assert fl.discard(pfn) == (pfn in ref)
                ref.discard(pfn)
            assert len(fl) == len(ref)
            if ref:
                assert fl.peek_lowest() == min(ref)
                assert fl.peek_highest() == max(ref)
        drained = []
        while fl:
            drained.append(fl.pop_lowest())
        assert drained == sorted(ref)


#: op, pfn, k — op selects add/discard/pop_{lowest,highest,lifo,fifo}/
#: extend/pop_many; k sizes the bulk ops.
_FUZZ_OP = st.tuples(st.integers(0, 7), st.integers(0, 60),
                     st.integers(1, 8))


@settings(max_examples=300)
@given(st.lists(_FUZZ_OP, max_size=200))
def test_differential_fuzz_intrusive_vs_legacy(ops):
    """The transition's acceptance property: random op sequences drive
    the array-backed list and the legacy reference to identical pop
    orders, membership, and lengths — on every extraction mode."""
    new = FreeList()
    old = LegacyFreeList()
    for op, pfn, k in ops:
        if op == 0:
            new.add(pfn)
            old.add(pfn)
        elif op == 1:
            assert new.discard(pfn) == old.discard(pfn)
        elif op in (2, 3, 4, 5):
            pop = ("pop_lowest", "pop_highest",
                   "pop_lifo", "pop_fifo")[op - 2]
            if not old:
                with pytest.raises(KeyError):
                    getattr(new, pop)()
            else:
                assert getattr(new, pop)() == getattr(old, pop)()
        elif op == 6:
            fresh = [p for p in range(pfn, pfn + k) if p not in old]
            new.extend(fresh)
            old.extend(fresh)
        else:
            mode = "pop_many_lifo" if pfn % 2 else "pop_many_fifo"
            assert getattr(new, mode)(k).tolist() == \
                getattr(old, mode)(k).tolist()
        assert len(new) == len(old)
        assert (pfn in new) == (pfn in old)
    new.check_invariants()
    old.check_invariants()
    while old:
        assert new.pop_lowest() == old.pop_lowest()
    assert not new
