"""FreeList: ordered extraction with lazy-deletion heaps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm.freelist import _COMPACT_MIN, FreeList


def test_empty_behaviour():
    fl = FreeList()
    assert len(fl) == 0
    assert not fl
    with pytest.raises(KeyError):
        fl.pop_lowest()
    with pytest.raises(KeyError):
        fl.pop_highest()
    with pytest.raises(KeyError):
        fl.peek_lowest()


def test_add_and_membership():
    fl = FreeList()
    fl.add(10)
    fl.add(5)
    assert 10 in fl
    assert 5 in fl
    assert 7 not in fl
    assert len(fl) == 2


def test_add_is_idempotent():
    fl = FreeList()
    fl.add(3)
    fl.add(3)
    assert len(fl) == 1
    assert fl.pop_lowest() == 3
    assert len(fl) == 0


def test_pop_lowest_order():
    fl = FreeList()
    for pfn in [30, 10, 20]:
        fl.add(pfn)
    assert [fl.pop_lowest() for _ in range(3)] == [10, 20, 30]


def test_pop_highest_order():
    fl = FreeList()
    for pfn in [30, 10, 20]:
        fl.add(pfn)
    assert [fl.pop_highest() for _ in range(3)] == [30, 20, 10]


def test_discard_then_pop_skips_stale_entries():
    fl = FreeList()
    for pfn in [1, 2, 3]:
        fl.add(pfn)
    assert fl.discard(1)
    assert not fl.discard(1)  # already gone
    assert fl.pop_lowest() == 2


def test_peek_does_not_remove():
    fl = FreeList()
    fl.add(42)
    assert fl.peek_lowest() == 42
    assert fl.peek_highest() == 42
    assert 42 in fl


def test_readd_after_discard():
    fl = FreeList()
    fl.add(7)
    fl.discard(7)
    fl.add(7)
    assert fl.pop_highest() == 7


def test_churn_keeps_structures_bounded():
    """Heavy add/discard churn must not leak stale heap/deque entries:
    internal structures stay within a constant factor of the live set."""
    fl = FreeList()
    live_span = 512
    for i in range(40_000):
        fl.add(i % live_span)
        fl.discard((i * 7 + 3) % live_span)
    live = len(fl)
    assert live <= live_span
    # Between compactions at most max(_COMPACT_MIN, live) removals
    # accumulate, each leaving one stale entry per structure; the deque
    # additionally keeps up to two occurrences per live member.
    slack = max(_COMPACT_MIN, live) + 1
    assert len(fl._min_heap) <= live + slack
    assert len(fl._max_heap) <= live + slack
    assert len(fl._queue) <= 2 * live + slack
    assert fl.stale_entries() <= 3 * slack + live


def test_churn_through_compaction_preserves_order():
    """Discarding past the compaction trigger must not disturb the
    address-ordered pop sequence."""
    fl = FreeList()
    n = 4 * _COMPACT_MIN
    for pfn in range(n):
        fl.add(pfn)
    for pfn in range(0, n, 2):  # force > _COMPACT_MIN removals
        fl.discard(pfn)
    assert [fl.pop_lowest() for _ in range(len(fl))] == list(range(1, n, 2))


@settings(max_examples=150)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 40)),
                max_size=120))
def test_compaction_is_behaviour_preserving(ops):
    """Property: forcing a rebuild after every operation never changes
    the pop sequences the simulator relies on (address order and LIFO;
    FIFO of discard-then-re-added members is documented as normalised,
    and no kernel path pops FIFO)."""
    plain = FreeList()
    compacted = FreeList()
    for op, pfn in ops:
        if op == 0:
            plain.add(pfn)
            compacted.add(pfn)
        elif op == 1:
            assert plain.discard(pfn) == compacted.discard(pfn)
        elif op == 2 and plain:
            assert plain.pop_lifo() == compacted.pop_lifo()
        elif op == 3 and plain:
            assert plain.pop_highest() == compacted.pop_highest()
        compacted._compact()
        assert len(plain) == len(compacted)
    while plain:
        assert plain.pop_lowest() == compacted.pop_lowest()
    assert not compacted


@settings(max_examples=200)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 100))))
def test_matches_reference_set(ops):
    """Property: FreeList behaves like a sorted set under add/discard."""
    fl = FreeList()
    ref: set[int] = set()
    for is_add, pfn in ops:
        if is_add:
            fl.add(pfn)
            ref.add(pfn)
        else:
            assert fl.discard(pfn) == (pfn in ref)
            ref.discard(pfn)
        assert len(fl) == len(ref)
        if ref:
            assert fl.peek_lowest() == min(ref)
            assert fl.peek_highest() == max(ref)
    drained = []
    while fl:
        drained.append(fl.pop_lowest())
    assert drained == sorted(ref)
