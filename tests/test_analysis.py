"""Contiguity scans, HW cost model, and report formatting."""

import pytest

from repro.analysis import (
    MetadataTableCost,
    SCAN_GRANULARITIES,
    contiguity_report,
    format_cdf,
    format_table,
    free_block_count,
    free_contiguity,
    migrations_per_second_capacity,
    movable_potential,
    percent,
    unmovable_block_fraction,
    unmovable_page_fraction,
    unmovable_region_internal_frag,
)
from repro.mm import AllocSource, MigrateType, PhysicalMemory
from repro.units import MiB, PAGEBLOCK_FRAMES


@pytest.fixture
def mem():
    return PhysicalMemory(MiB(16))  # 8 pageblocks


def test_empty_memory_full_contiguity(mem):
    assert free_contiguity(mem, PAGEBLOCK_FRAMES) == 1.0
    assert free_block_count(mem, PAGEBLOCK_FRAMES) == 8


def test_one_page_poisons_one_block(mem):
    mem.mark_allocated(0, 0, MigrateType.UNMOVABLE, AllocSource.SLAB, 0)
    assert unmovable_block_fraction(mem, PAGEBLOCK_FRAMES) == 1 / 8
    assert movable_potential(mem, PAGEBLOCK_FRAMES) == 7 / 8


def test_single_page_poisons_whole_gigabyte():
    """The paper's §1 amplification example: one unmovable 4 KiB page can
    render a 1 GiB region unmovable."""
    mem = PhysicalMemory(MiB(1024))
    mem.mark_allocated(100_000, 0, MigrateType.UNMOVABLE,
                       AllocSource.NETWORKING, 0)
    assert movable_potential(mem, SCAN_GRANULARITIES["1GB"]) == 0.0
    assert unmovable_page_fraction(mem) < 0.00001


def test_free_contiguity_counts_only_full_blocks(mem):
    # Allocate one frame in every block: zero full blocks remain.
    for block in range(8):
        mem.mark_allocated(block * PAGEBLOCK_FRAMES, 0,
                           MigrateType.MOVABLE, AllocSource.USER, 0)
    assert free_contiguity(mem, PAGEBLOCK_FRAMES) == 0.0
    # But almost all memory is still free.
    assert mem.free_frames() == mem.nframes - 8


def test_free_contiguity_is_fraction_of_free_memory(mem):
    # Fill half the memory completely: remaining free memory is all
    # contiguous, so the metric stays 1.0.
    half = mem.nframes // 2
    mem.mark_allocated(0, 0, MigrateType.MOVABLE, AllocSource.USER, 0)
    for pfn in range(1, half):
        mem.mark_allocated(pfn, 0, MigrateType.MOVABLE, AllocSource.USER, 0)
    assert free_contiguity(mem, PAGEBLOCK_FRAMES) == 1.0


def test_full_memory_zero_contiguity(mem):
    for pfn in range(mem.nframes):
        mem.mark_allocated(pfn, 0, MigrateType.MOVABLE, AllocSource.USER, 0)
    assert free_contiguity(mem, PAGEBLOCK_FRAMES) == 0.0


def test_contiguity_report_has_all_granularities(mem):
    report = contiguity_report(mem)
    assert set(report) == {"2MB", "4MB", "32MB", "1GB"}
    # 16 MiB machine: no 32MB or 1GB block fits.
    assert report["32MB"] == 0.0
    assert report["1GB"] == 0.0


def test_internal_frag_of_unmovable_region(mem):
    # Region = blocks 4..8.  Block 4: half full; blocks 5-7 free.
    start = 4 * PAGEBLOCK_FRAMES
    for pfn in range(start, start + PAGEBLOCK_FRAMES // 2):
        mem.mark_allocated(pfn, 0, MigrateType.UNMOVABLE,
                           AllocSource.NETWORKING, 0)
    frag = unmovable_region_internal_frag(mem, start)
    assert frag == pytest.approx(0.5)


def test_internal_frag_empty_region(mem):
    assert unmovable_region_internal_frag(mem, 0) == 0.0


class TestHwCost:
    def test_area_matches_paper(self):
        cost = MetadataTableCost()
        assert cost.area_mm2() == pytest.approx(0.0038, rel=0.1)

    def test_energy_matches_paper(self):
        assert MetadataTableCost().energy_per_access_nj() == pytest.approx(
            0.0017, rel=0.1)

    def test_leakage_matches_paper(self):
        assert MetadataTableCost().leakage_mw() == pytest.approx(0.64, rel=0.1)

    def test_core_fraction_negligible(self):
        frac = MetadataTableCost().fraction_of_core_area()
        assert frac == pytest.approx(0.00014, rel=0.2)  # §5.3: 0.014 %

    def test_migration_capacity_far_exceeds_demand(self):
        """§5.3: even one entry sustains far more than the Very High
        rate of 1000 migrations/s."""
        one_entry = migrations_per_second_capacity(entries=1)
        assert one_entry > 10_000
        assert migrations_per_second_capacity(entries=16) == 16 * one_entry


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xx", "y"]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_cdf(self):
        out = format_cdf([0.1, 0.5, 0.9], points=[0.0, 0.5, 1.0])
        assert "0.33" in out.replace("0.67", "0.33") or "0.67" in out

    def test_percent(self):
        assert percent(0.314) == "31.4%"
        assert percent(0.5, digits=0) == "50%"
