"""Unified telemetry: tracepoints, metrics registry, manifests, CLI verbs."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    TRACEPOINTS,
    CounterSet,
    Gauge,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    RingBufferSink,
    Snapshotable,
    TelemetryConfig,
    TraceEvent,
    TracepointRegistry,
    build_manifest,
    deterministic_view,
    load_manifest,
    manifest_diff,
    read_jsonl,
    tracepoint,
    tracing,
    write_manifest,
)
from repro.telemetry.metrics import HIST_BUCKETS


class _BoomSink:
    """Proves disabled tracepoints never reach the sink layer."""

    def append(self, event):
        raise AssertionError("sink touched while tracepoint disabled")


class TestTracepoints:
    def test_disabled_is_default_and_reaches_no_sink(self):
        reg = TracepointRegistry()
        tp = reg.tracepoint("t.x")
        reg.attach(_BoomSink())
        assert tp.enabled is False
        tp.emit(a=1)  # must not raise: emit re-checks the flag

    def test_enabled_emit_records_fields_and_name(self):
        reg = TracepointRegistry()
        tp = reg.tracepoint("t.x")
        sink = RingBufferSink()
        reg.attach(sink)
        reg.enable("t.*")
        tp.emit(a=1, b="two")
        (event,) = sink.events()
        assert event.name == "t.x"
        assert event.fields == {"a": 1, "b": "two"}

    def test_declare_is_idempotent(self):
        reg = TracepointRegistry()
        assert reg.tracepoint("t.x") is reg.tracepoint("t.x")

    def test_enable_glob_returns_sorted_hits(self):
        reg = TracepointRegistry()
        for name in ("mm.alloc", "mm.free", "fleet.done"):
            reg.tracepoint(name)
        assert reg.enable("mm.*") == ["mm.alloc", "mm.free"]
        assert reg.enabled_names() == ["mm.alloc", "mm.free"]
        reg.disable_all()
        assert reg.enabled_names() == []

    def test_sim_clock_stamps_events(self):
        class FakeKernel:
            now = 1234

        reg = TracepointRegistry()
        tp = reg.tracepoint("t.x")
        sink = RingBufferSink()
        reg.attach(sink)
        reg.enable()
        clock = FakeKernel()
        reg.set_clock(clock)
        tp.emit(a=1)
        tp.emit(ts=9, a=2)  # explicit ts wins
        assert [e.ts for e in sink.events()] == [1234, 9]

    def test_clock_is_weak(self):
        class FakeKernel:
            now = 7

        reg = TracepointRegistry()
        reg.set_clock(FakeKernel())  # dies immediately
        assert reg.now() == 0

    def test_tracing_restores_state_and_detaches_sink(self):
        reg = TracepointRegistry()
        a = reg.tracepoint("a")
        b = reg.tracepoint("b")
        b.enabled = True
        with tracing("a", registry=reg) as sink:
            assert a.enabled and b.enabled
            a.emit(x=1)
        assert a.enabled is False
        assert b.enabled is True
        assert sink not in reg.sinks
        assert len(sink.events()) == 1

    def test_global_instrumentation_is_registered(self):
        # Probes register at import time; pull in the instrumented layers.
        import repro.fleet.engine  # noqa: F401
        import repro.kalloc.slab  # noqa: F401
        import repro.mm.kernel  # noqa: F401
        import repro.sim.tlb  # noqa: F401

        for name in ("mm.buddy.alloc", "mm.compact.finish",
                     "mm.reclaim.run", "kalloc.slab.grow",
                     "sim.tlb.walk", "fleet.run.finish"):
            assert TRACEPOINTS.get(name) is not None, name


class TestSinks:
    def test_ring_capacity_and_dropped(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.append(TraceEvent("t", i))
        assert len(sink) == 3
        assert sink.appended == 5
        assert sink.dropped == 2
        assert [e.ts for e in sink.events()] == [2, 3, 4]

    def test_ring_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            RingBufferSink(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [TraceEvent("t.a", 5, {"pfn": 10, "label": "z"}),
                  TraceEvent("t.b", 6, {})]
        with JsonlSink(path) as sink:
            for e in events:
                sink.append(e)
        assert sink.written == 2
        assert read_jsonl(path) == events

    def test_ring_to_jsonl_matches_event_json(self):
        sink = RingBufferSink()
        sink.append(TraceEvent("t", 1, {"k": 2}))
        line = sink.to_jsonl().strip()
        assert TraceEvent.from_json(line) == TraceEvent("t", 1, {"k": 2})


class TestCounterSet:
    def test_items_sorted_and_cached(self):
        c = CounterSet()
        c.inc("b")
        c.inc("a", 2)
        first = c.items()
        assert first == [("a", 2), ("b", 1)]
        assert c.items() is first          # cache hit, no re-sort
        c.inc("c")
        assert c.items() is not first      # inc invalidates
        assert c.items() == [("a", 2), ("b", 1), ("c", 1)]

    def test_merge_accepts_counterset_and_dict(self):
        c = CounterSet({"a": 1})
        c.merge(CounterSet({"a": 2, "b": 3}))
        c.merge({"b": 1})
        assert c.snapshot() == {"a": 3, "b": 4}

    def test_delta_only_changed_events(self):
        before = CounterSet({"a": 1, "b": 2})
        after = CounterSet({"a": 4, "b": 2, "c": 1})
        assert after.delta(before) == {"a": 3, "c": 1}
        assert after.delta(before.snapshot()) == {"a": 3, "c": 1}

    def test_vmstat_is_a_counterset_facade(self):
        from repro.mm.vmstat import VmStat

        v = VmStat()
        v.inc("alloc_success", 3)
        assert isinstance(v, CounterSet)
        assert isinstance(v, Snapshotable)
        other = VmStat()
        other.inc("alloc_success")
        assert v.delta(other) == {"alloc_success": 2}

    def test_to_jsonl(self):
        c = CounterSet({"b": 2, "a": 1})
        lines = [json.loads(line) for line in c.to_jsonl().splitlines()]
        assert lines == [{"counter": "a", "value": 1},
                         {"counter": "b", "value": 2}]


class TestHistogram:
    def test_bucket_edges(self):
        h = Histogram()
        # bucket 0: v < 1; bucket i: [2**(i-1), 2**i)
        assert h.bucket_index(0) == 0
        assert h.bucket_index(0.99) == 0
        assert h.bucket_index(1) == 1
        assert h.bucket_index(2) == 2
        assert h.bucket_index(3) == 2
        assert h.bucket_index(4) == 3
        assert h.bucket_index(2**62) == HIST_BUCKETS - 1
        assert h.bucket_index(2**100) == HIST_BUCKETS - 1

    def test_bucket_bounds_contain_their_values(self):
        for v in (1, 2, 3, 7, 8, 1000, 2**40):
            lo, hi = Histogram.bucket_bounds(Histogram.bucket_index(v))
            assert lo <= v < hi

    def test_observe_snapshot_and_mean(self):
        h = Histogram()
        for v in (1, 2, 3, 10):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["total"] == 16
        assert snap["buckets"] == {"1": 1, "2": 2, "8": 1}
        assert h.mean == 4.0

    def test_merge_is_exact_elementwise(self):
        a, b = Histogram(), Histogram()
        a.observe(5)
        b.observe(5)
        b.observe(100)
        a.merge(b)
        assert a.count == 3
        assert a.snapshot()["buckets"] == {"4": 2, "64": 1}

    def test_percentile_upper_edge(self):
        h = Histogram()
        for _ in range(99):
            h.observe(3)       # bucket [2, 4)
        h.observe(1000)        # bucket [512, 1024)
        assert h.percentile(50) == 4.0
        assert h.percentile(100) == 1024.0
        with pytest.raises(ConfigurationError):
            h.percentile(101)


class TestMetricsRegistry:
    def test_snapshot_shape(self):
        m = MetricsRegistry()
        m.inc("ev", 2)
        m.gauge("g").set(1.5)
        m.histogram("h").observe(4)
        snap = m.snapshot()
        assert snap["counters"] == {"ev": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_timer_records_histogram_and_gauge(self):
        m = MetricsRegistry()
        with m.timer("phase"):
            pass
        assert m.histogram("phase").count == 1
        assert m.gauge("phase.seconds").value >= 0

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("ev")
        b.inc("ev", 2)
        b.gauge("g").set(-9)
        a.gauge("g").set(2)
        b.histogram("h").observe(1)
        a.merge(b)
        assert a.counters["ev"] == 3
        assert a.gauge("g").value == -9   # larger magnitude wins
        assert a.histogram("h").count == 1

    def test_gauge_merge_keeps_larger_magnitude(self):
        g = Gauge(3)
        g.merge(Gauge(-1))
        assert g.value == 3

    def test_protocol_instances(self):
        from repro.fleet import FleetSample
        from repro.sim.tlb import WalkStats

        for obj in (CounterSet(), MetricsRegistry(), WalkStats(),
                    FleetSample(scans=[])):
            assert isinstance(obj, Snapshotable), type(obj)


class TestWalkStats:
    def test_snapshot_merge(self):
        from repro.sim.tlb import WalkStats

        a = WalkStats(accesses=2, walks=1, walk_cycles=10,
                      translation_cycles=20)
        b = WalkStats(accesses=3, l1_hits=2, walks=1, walk_cycles=5,
                      translation_cycles=10)
        a.merge(b)
        assert a.snapshot() == {
            "accesses": 5, "l1_hits": 2, "l2_hits": 0, "walks": 2,
            "walk_cycles": 15, "translation_cycles": 30,
        }


class TestTelemetryConfig:
    def test_defaults_valid(self):
        cfg = TelemetryConfig()
        assert cfg.trace is False

    def test_ring_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(ring_capacity=0)

    def test_empty_patterns_rejected(self):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(trace_patterns=())

    def test_events_path_requires_trace(self):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(events_path="x.jsonl")


class TestWorkerEnvValidation:
    def test_non_integer_env_rejected(self, monkeypatch):
        from repro.fleet.engine import WORKERS_ENV, resolve_workers

        monkeypatch.setenv(WORKERS_ENV, "four")
        with pytest.raises(ConfigurationError, match="not an integer"):
            resolve_workers(None)

    def test_negative_env_rejected(self, monkeypatch):
        from repro.fleet.engine import WORKERS_ENV, resolve_workers

        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.raises(ConfigurationError, match=">= 0"):
            resolve_workers(None)


class TestManifests:
    def test_round_trip(self, tmp_path):
        m = build_manifest(kind="test", config={"n": 1}, seed=3,
                           counters={"a": 1})
        path = write_manifest(tmp_path / "m.json", m)
        assert load_manifest(path) == m

    def test_deterministic_view_drops_volatile(self):
        m = build_manifest(kind="test", volatile={"workers": 4})
        assert "volatile" not in deterministic_view(m)
        assert m["volatile"]["workers"] == 4

    def test_diff_counters_and_bench(self):
        a = build_manifest(kind="t", counters={"x": 1, "same": 5},
                           bench={"b": {"ops_per_sec": 100.0}})
        b = build_manifest(kind="t", counters={"x": 4, "same": 5},
                           bench={"b": {"ops_per_sec": 50.0}})
        d = manifest_diff(a, b)
        assert d["counters"] == {"x": {"a": 1, "b": 4, "delta": 3}}
        assert d["bench"]["b"]["ratio"] == 0.5


FLEET_KW = dict(n_servers=3, base_seed=11)


def _small_config():
    from repro.fleet import ServerConfig
    from repro.units import MiB

    return ServerConfig(mem_bytes=MiB(64), min_uptime_steps=20,
                        max_uptime_steps=60)


class TestFleetTelemetry:
    def test_manifest_deterministic_across_worker_counts(self):
        from repro.fleet import FleetConfig, run_fleet

        cfg = _small_config()
        serial = run_fleet(FleetConfig(
            server=cfg, workers=1, telemetry=TelemetryConfig(), **FLEET_KW))
        parallel = run_fleet(FleetConfig(
            server=cfg, workers=4, telemetry=TelemetryConfig(), **FLEET_KW))
        assert serial.scans == parallel.scans
        assert deterministic_view(serial.manifest) == \
            deterministic_view(parallel.manifest)
        assert serial.manifest["counters"]["alloc_success"] > 0

    def test_tracing_produces_jsonl_and_manifest(self, tmp_path):
        from repro.fleet import FleetConfig, run_fleet

        events_path = tmp_path / "events.jsonl"
        manifest_path = tmp_path / "run.json"
        sample = run_fleet(FleetConfig(
            server=_small_config(), workers=1,
            telemetry=TelemetryConfig(trace=True,
                                      events_path=str(events_path),
                                      manifest_path=str(manifest_path)),
            **FLEET_KW))
        events = read_jsonl(events_path)
        names = {e.name for e in events}
        assert "fleet.run.start" in names
        assert "mm.buddy.alloc" in names
        manifest = load_manifest(manifest_path)
        assert manifest == sample.manifest
        assert manifest["kind"] == "fleet"
        # Traced and untraced runs produce identical scans (tracing is
        # observation, not perturbation).
        plain = run_fleet(FleetConfig(server=_small_config(), workers=1,
                                      **FLEET_KW))
        assert plain.scans == sample.scans

    def test_deprecated_accessors_warn_once_and_delegate(self):
        import warnings as _warnings

        from repro.fleet import FleetConfig, run_fleet
        from repro.fleet import sampler as sampler_mod

        sample = run_fleet(FleetConfig(server=_small_config(), workers=1,
                                       **FLEET_KW))
        sampler_mod._DEPRECATION_WARNED.clear()
        try:
            with _warnings.catch_warnings(record=True) as caught:
                _warnings.simplefilter("always")
                legacy_c = sample.contiguity_values("2MB")
                sample.contiguity_values("2MB")  # second call: silent
                legacy_u = sample.unmovable_values("2MB")
                sample.unmovable_values("2MB")  # second call: silent
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)]
            # Exactly once per deprecated accessor, not per call.
            assert len(deprecations) == 2
            assert "contiguity_values" in str(deprecations[0].message)
            assert "unmovable_values" in str(deprecations[1].message)
        finally:
            sampler_mod._DEPRECATION_WARNED.clear()
        assert legacy_c == sample.series("contiguity", "2MB")
        assert legacy_u == sample.series("unmovable", "2MB")
        with pytest.raises(ConfigurationError):
            sample.series("nope", "2MB")


class TestCliVerbs:
    def _write_stream(self, path):
        events = [TraceEvent("mm.buddy.alloc", 1, {"pfn": 5, "order": 0}),
                  TraceEvent("mm.compact.start", 2, {"target_order": 9}),
                  TraceEvent("mm.buddy.free", 3, {"pfn": 5, "order": 0})]
        with JsonlSink(path) as sink:
            for e in events:
                sink.append(e)

    def test_trace_filters_input_stream(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ev.jsonl"
        self._write_stream(path)
        main(["trace", "--input", str(path), "--match", "mm.buddy.*"])
        out = capsys.readouterr().out
        assert out.splitlines() == [
            "         1  mm.buddy.alloc           order=0 pfn=5",
            "         3  mm.buddy.free            order=0 pfn=5",
        ]

    def test_trace_out_rewrites_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "ev.jsonl"
        dst = tmp_path / "filtered.jsonl"
        self._write_stream(src)
        main(["trace", "--input", str(src), "--match", "mm.compact.*",
              "--out", str(dst)])
        assert read_jsonl(dst) == [
            TraceEvent("mm.compact.start", 2, {"target_order": 9})]

    def test_metrics_single_manifest(self, tmp_path, capsys):
        from repro.cli import main

        m = build_manifest(kind="fleet", seed=7, config={"n_servers": 2},
                           counters={"alloc_success": 10})
        path = write_manifest(tmp_path / "m.json", m)
        main(["metrics", path])
        out = capsys.readouterr().out
        assert "kind: fleet" in out
        assert "seed: 7" in out
        assert "alloc_success" in out

    def test_metrics_diff(self, tmp_path, capsys):
        from repro.cli import main

        a = build_manifest(kind="fleet", seed=1, counters={"x": 1})
        b = build_manifest(kind="fleet", seed=2, counters={"x": 3})
        pa = write_manifest(tmp_path / "a.json", a)
        pb = write_manifest(tmp_path / "b.json", b)
        main(["metrics", pa, pb])
        out = capsys.readouterr().out
        assert "Counter deltas" in out
        assert "+2" in out

    def test_metrics_identical_manifests(self, tmp_path, capsys):
        from repro.cli import main

        m = build_manifest(kind="fleet", seed=1, counters={"x": 1})
        pa = write_manifest(tmp_path / "a.json", m)
        main(["metrics", pa, pa])
        assert "identical" in capsys.readouterr().out

    def test_fleet_verb_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        events = tmp_path / "ev.jsonl"
        manifest = tmp_path / "run.json"
        main(["fleet", "--servers", "2", "--mem-mib", "64",
              "--workers", "1", "--events", str(events),
              "--manifest", str(manifest)])
        out = capsys.readouterr().out
        assert "Fleet survey" in out
        assert load_manifest(manifest)["kind"] == "fleet"
        assert len(read_jsonl(events)) > 0
