"""Cross-module integration scenarios: the paper's stories end to end."""

import pytest

from repro.analysis import (
    movable_potential,
    unmovable_block_fraction,
    watch_kernel,
)
from repro.core import IlluminatorKernel
from repro.core.hwext import HwMigrationEngine
from repro.mm import AllocSource, KernelConfig
from repro.units import MiB, PAGEBLOCK_FRAMES
from repro.vm import AddressSpace, EXTENT_BYTES
from repro.workloads import (
    Workload,
    fragment_fully,
)
from repro.workloads.services import CACHE_B

from conftest import make_contiguitas, make_linux


def test_three_kernels_same_churn_ranked_by_contiguity(rng):
    """The paper's hierarchy under memory-full churn: Contiguitas keeps
    more recoverable contiguity than Linux, and Illuminator only stays
    "pure" by failing kernel allocations outright when no whole-free
    pageblock exists."""
    import random

    from repro.errors import OutOfMemoryError

    def drive(kernel, steps=4000):
        """Memory-full churn (production regime), tolerant of
        Illuminator's OOM-prone fallback (itself part of the paper's
        critique)."""
        from repro.mm import vmstat as ev

        rng = random.Random(17)
        # Fill with page cache until the kernel has to reclaim.
        before = kernel.stat[ev.PAGES_RECLAIMED]
        while (kernel.free_frames() > 0
               and kernel.stat[ev.PAGES_RECLAIMED] == before):
            kernel.alloc_pages(0, reclaimable=True)
        live = []
        unmovable_ooms = 0
        for _ in range(steps):
            try:
                kernel.alloc_pages(0, reclaimable=True)  # cache churn
            except OutOfMemoryError:
                pass
            if live and rng.random() < 0.45:
                kernel.free_pages(live.pop(rng.randrange(len(live))))
                continue
            try:
                if rng.random() < 0.3:
                    live.append(kernel.alloc_pages(
                        0, source=rng.choice([AllocSource.NETWORKING,
                                              AllocSource.SLAB])))
                else:
                    live.append(kernel.alloc_pages(0))
            except OutOfMemoryError:
                unmovable_ooms += 1
                if live:
                    kernel.free_pages(live.pop())
        return unmovable_ooms

    results = {}
    ooms = {}
    for name, kernel in (
        ("linux", make_linux(mem_mib=64)),
        ("illuminator", IlluminatorKernel(KernelConfig(mem_bytes=MiB(64)))),
        ("contiguitas", make_contiguitas(mem_mib=64)),
    ):
        ooms[name] = drive(kernel)
        results[name] = movable_potential(kernel.mem, PAGEBLOCK_FRAMES)
    # Among the kernels that actually serve the demand, Contiguitas
    # preserves more coarse contiguity than Linux.
    assert results["contiguitas"] > results["linux"]
    # Illuminator buys block purity with allocation failures at full
    # memory (no whole-free pageblock => kernel allocation fails) — the
    # practical limitation behind the paper's critique.
    assert ooms["illuminator"] > ooms["contiguitas"]
    assert ooms["illuminator"] > ooms["linux"]


def test_full_service_lifecycle_on_contiguitas():
    """Deploy, churn, restart, redeploy — confinement and consistency
    hold across the whole arc, and the second deployment still gets
    huge pages."""
    kernel = make_contiguitas(mem_mib=64)
    first = Workload(kernel, CACHE_B, seed=3)
    first.start()
    for _ in range(150):
        first.step()
    first.stop()
    kernel.check_consistency()
    assert kernel.confinement_violations() == 0

    second = Workload(kernel, CACHE_B, seed=4)
    second.start()
    assert second.huge_coverage()["2m"] > 0.5
    kernel.check_consistency()


def test_addrspace_on_fragmented_linux_vs_contiguitas():
    """A process faulting a heap sees different page sizes depending on
    the kernel's fragmentation state — the mechanism behind Fig. 10."""
    linux = make_linux(mem_mib=64, compaction_enabled=False)
    fragment_fully(linux)
    aspace_l = AddressSpace(linux)
    vma_l = aspace_l.mmap(4 * EXTENT_BYTES)
    for off in range(0, vma_l.length, 4096):
        aspace_l.fault(vma_l.start + off)

    cont = make_contiguitas(mem_mib=64)
    fragment_fully(cont)
    aspace_c = AddressSpace(cont)
    vma_c = aspace_c.mmap(4 * EXTENT_BYTES)
    for off in range(0, vma_c.length, 4096):
        aspace_c.fault(vma_c.start + off)

    assert aspace_c.huge_coverage() > aspace_l.huge_coverage()
    assert aspace_c.huge_coverage() == 1.0


def test_hw_engine_paired_with_kernel_shrink():
    """Contiguitas-HW migrations as the kernel uses them: unmovable pages
    at the boundary move deeper, the region shrinks, and the functional
    HW engine agrees that redirection served every access."""
    kernel = make_contiguitas(mem_mib=32, hw_enabled=True,
                              initial_unmovable_fraction=0.5)
    engine = HwMigrationEngine()
    handles = [kernel.alloc_pages(0, source=AllocSource.NETWORKING)
               for _ in range(600)]
    for h in handles[::2]:
        kernel.free_pages(h)
    before = kernel.layout.unmovable_blocks
    for _ in range(40):
        kernel.advance(200_000)
    assert kernel.layout.unmovable_blocks < before
    # Mirror one of those migrations through the functional HW engine.
    report = engine.migrate_page(1000, 2000)
    assert report.unavailable_cycles == engine.params.invlpg_cycles
    kernel.check_consistency()


def test_timeline_records_fragmentation_buildup(rng):
    """The §5.2 observation: unmovable share rises quickly then
    plateaus; a timeline over a Linux workload shows monotone-ish growth
    early and stabilisation later."""
    kernel = make_linux(mem_mib=64)
    recorder = watch_kernel(kernel)
    workload = Workload(kernel, CACHE_B, seed=9)
    workload.start()
    for step in range(400):
        workload.step()
        if step % 40 == 0:
            recorder.sample(step)
    series = recorder.series("unmovable_2m_blocks")
    assert series[-1] > series[0]
    assert len(recorder.to_csv().splitlines()) == len(series) + 1


def test_pinning_story_across_kernels():
    """Zero-copy pins: Linux freezes movable blocks forever; Contiguitas
    migrates-then-pins and the movable space stays clean."""
    linux = make_linux(mem_mib=32)
    cont = make_contiguitas(mem_mib=32)
    for kernel in (linux, cont):
        pins = []
        for _ in range(40):
            h = kernel.alloc_pages(0)
            kernel.pin_pages(h)
            pins.append(h)
    linux_poisoned = unmovable_block_fraction(linux.mem, PAGEBLOCK_FRAMES)
    cont_region_share = cont.layout.unmovable_blocks / cont.mem.npageblocks
    assert cont.confinement_violations() == 0
    # Linux's pins landed in general-purpose memory; Contiguitas kept
    # them inside its (small) region.
    assert linux_poisoned > 0
    assert cont_region_share <= 0.25
