"""TLB hierarchy, page walks, and page-size effects."""

import numpy as np
import pytest

from repro.sim import (
    DEFAULT_PARAMS,
    SHIFT_1G,
    SHIFT_2M,
    SHIFT_4K,
    SetAssocTLB,
    TLBHierarchy,
    TraceSpec,
    generate_addresses,
)


class TestSetAssocTLB:
    def test_miss_then_hit(self):
        tlb = SetAssocTLB(64, 4)
        assert not tlb.lookup(10, SHIFT_4K)
        tlb.fill(10, SHIFT_4K)
        assert tlb.lookup(10, SHIFT_4K)

    def test_page_sizes_are_distinct_tags(self):
        tlb = SetAssocTLB(64, 4)
        tlb.fill(10, SHIFT_4K)
        assert not tlb.lookup(10, SHIFT_2M)

    def test_eviction_on_conflict(self):
        tlb = SetAssocTLB(4, 4)  # one set
        for vpn in range(4):
            tlb.fill(vpn, SHIFT_4K)
        tlb.lookup(0, SHIFT_4K)  # refresh
        tlb.fill(99, SHIFT_4K)
        assert tlb.lookup(0, SHIFT_4K)
        assert not tlb.lookup(1, SHIFT_4K)

    def test_invalidate_and_flush(self):
        tlb = SetAssocTLB(64, 4)
        tlb.fill(3, SHIFT_4K)
        assert tlb.invalidate(3, SHIFT_4K)
        tlb.fill(4, SHIFT_4K)
        tlb.flush()
        assert not tlb.lookup(4, SHIFT_4K)


class TestTLBHierarchy:
    def test_l1_hit_is_cheap(self):
        h = TLBHierarchy(DEFAULT_PARAMS)
        h.translate(0x1000, SHIFT_4K)  # cold miss
        cycles = h.translate(0x1000, SHIFT_4K)
        assert cycles == DEFAULT_PARAMS.l1_tlb_latency
        assert h.stats.l1_hits == 1

    def test_walk_cost_exceeds_hits(self):
        h = TLBHierarchy(DEFAULT_PARAMS)
        cold = h.translate(0x5000, SHIFT_4K)
        warm = h.translate(0x5000, SHIFT_4K)
        assert cold > warm

    def test_pwc_shortens_second_walk(self):
        h = TLBHierarchy(DEFAULT_PARAMS)
        first = h.translate(0x0000_0000, SHIFT_4K)
        # Different page, same upper-level entries: the PWC covers the
        # PML4/PDPT/PD levels, leaving only the PTE access.
        second = h.translate(0x0000_2000, SHIFT_4K)
        assert second < first

    def test_huge_pages_walk_fewer_levels(self):
        h4k = TLBHierarchy(DEFAULT_PARAMS)
        h2m = TLBHierarchy(DEFAULT_PARAMS)
        h1g = TLBHierarchy(DEFAULT_PARAMS)
        c4k = h4k.translate(0, SHIFT_4K)
        c2m = h2m.translate(0, SHIFT_2M)
        c1g = h1g.translate(0, SHIFT_1G)
        assert c4k > c2m > c1g

    def test_huge_pages_raise_tlb_reach(self):
        """The core Fig. 3 effect: the same footprint has far fewer walks
        when mapped with 2 MiB pages."""
        spec = TraceSpec(footprint_bytes=512 << 20, hot_fraction=0.05,
                         hot_weight=0.5)
        addrs = generate_addresses(spec, 20_000, seed=1)
        h4k = TLBHierarchy(DEFAULT_PARAMS)
        h2m = TLBHierarchy(DEFAULT_PARAMS)
        for a in addrs.tolist():
            h4k.translate(a, SHIFT_4K)
            h2m.translate(a, SHIFT_2M)
        assert h2m.stats.walks < h4k.stats.walks / 2
        assert h2m.stats.walk_cycles < h4k.stats.walk_cycles

    def test_invalidate_costs_invlpg(self):
        h = TLBHierarchy(DEFAULT_PARAMS)
        h.translate(0x1000, SHIFT_4K)
        assert h.invalidate(0x1000, SHIFT_4K) == DEFAULT_PARAMS.invlpg_cycles
        # Next access walks again.
        walks = h.stats.walks
        h.translate(0x1000, SHIFT_4K)
        assert h.stats.walks == walks + 1

    def test_stats_accounting(self):
        h = TLBHierarchy(DEFAULT_PARAMS)
        for a in (0x1000, 0x1000, 0x2000):
            h.translate(a, SHIFT_4K)
        s = h.stats
        assert s.accesses == 3
        assert s.l1_hits + s.l2_hits + s.walks == 3


class TestTraceGeneration:
    def test_respects_footprint(self):
        spec = TraceSpec(footprint_bytes=1 << 20)
        addrs = generate_addresses(spec, 1000, seed=0)
        assert addrs.max() < (1 << 20)
        assert addrs.min() >= 0

    def test_hot_set_concentration(self):
        spec = TraceSpec(footprint_bytes=64 << 20, hot_fraction=0.01,
                         hot_weight=0.9, stride_locality=0.0)
        addrs = generate_addresses(spec, 50_000, seed=0)
        pages = addrs // 4096
        hot_limit = (64 << 20) // 4096 * 0.01
        hot_share = np.mean(pages < hot_limit)
        assert hot_share > 0.85

    def test_deterministic_by_seed(self):
        spec = TraceSpec(footprint_bytes=1 << 20)
        a = generate_addresses(spec, 100, seed=7)
        b = generate_addresses(spec, 100, seed=7)
        assert (a == b).all()

    def test_line_aligned(self):
        spec = TraceSpec(footprint_bytes=1 << 20)
        addrs = generate_addresses(spec, 100, seed=0)
        assert (addrs % 64 == 0).all()

    def test_spec_validation(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            TraceSpec(footprint_bytes=0)
        with pytest.raises(ConfigurationError):
            TraceSpec(footprint_bytes=4096, hot_weight=1.5)
