"""Buddy allocator: split/merge, migrate-type lists, fallback stealing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm import (
    AllocSource,
    BuddyAllocator,
    MigrateType,
    PageblockTable,
    PhysicalMemory,
    VmStat,
)
from repro.mm import vmstat as ev
from repro.units import MAX_ORDER, MiB, PAGEBLOCK_FRAMES


def make_buddy(mem_mib=8, **kwargs):
    mem = PhysicalMemory(MiB(mem_mib))
    table = PageblockTable(mem)
    buddy = BuddyAllocator(mem, table, VmStat(), **kwargs)
    buddy.seed_free()
    return buddy


def test_seed_free_populates_everything():
    buddy = make_buddy()
    assert buddy.nr_free == buddy.nr_frames
    assert buddy.largest_free_order() == MAX_ORDER
    buddy.check_consistency()


def test_alloc_order0():
    buddy = make_buddy()
    pfn = buddy.alloc(0, MigrateType.MOVABLE)
    assert pfn == 0  # prefer=low, address ordered
    assert buddy.nr_free == buddy.nr_frames - 1
    assert buddy.mem.is_allocated(pfn)
    buddy.check_consistency()


def test_alloc_prefer_high():
    buddy = make_buddy(prefer="high")
    pfn = buddy.alloc(0, MigrateType.MOVABLE)
    assert pfn == buddy.nr_frames - 1
    buddy.check_consistency()


def test_alloc_splits_minimally():
    buddy = make_buddy()
    buddy.alloc(0, MigrateType.MOVABLE)
    # One pageblock was split into a ladder of orders 0..MAX_ORDER-1.
    sizes = [len(buddy.free_lists[o][MigrateType.MOVABLE])
             for o in range(MAX_ORDER)]
    assert sizes == [1] * MAX_ORDER


def test_free_merges_back_to_pageblock():
    buddy = make_buddy()
    pfn = buddy.alloc(0, MigrateType.MOVABLE)
    buddy.free(pfn)
    assert buddy.nr_free == buddy.nr_frames
    assert buddy.largest_free_order() == MAX_ORDER
    assert len(buddy.free_lists[MAX_ORDER][MigrateType.MOVABLE]) == \
        buddy.nr_blocks
    buddy.check_consistency()


def test_alloc_whole_pageblock():
    buddy = make_buddy()
    pfn = buddy.alloc(MAX_ORDER, MigrateType.MOVABLE)
    assert pfn % PAGEBLOCK_FRAMES == 0
    assert buddy.nr_free == buddy.nr_frames - PAGEBLOCK_FRAMES


def test_alloc_exhaustion_returns_none():
    buddy = make_buddy(mem_mib=2)
    got = [buddy.alloc(MAX_ORDER, MigrateType.MOVABLE) for _ in range(1)]
    assert got[0] is not None
    assert buddy.alloc(MAX_ORDER, MigrateType.MOVABLE) is None
    assert buddy.stat[ev.ALLOC_FAIL] == 1


def test_unmovable_fallback_steals_movable_pageblock():
    buddy = make_buddy()
    # All pageblocks start MOVABLE; an UNMOVABLE request must fall back.
    pfn = buddy.alloc(0, MigrateType.UNMOVABLE,
                      source=AllocSource.SLAB)
    assert pfn is not None
    assert buddy.stat[ev.ALLOC_FALLBACK] == 1
    assert buddy.stat[ev.PAGEBLOCK_STEAL] == 1
    # The whole block converted: remaining free pages moved lists.
    assert buddy.pageblocks.get(pfn) is MigrateType.UNMOVABLE
    buddy.check_consistency()


def test_fallback_disabled_confines():
    buddy = make_buddy(fallback_enabled=False)
    assert buddy.alloc(0, MigrateType.UNMOVABLE) is None
    assert buddy.stat[ev.ALLOC_FAIL] == 1


def test_freed_page_joins_current_pageblock_type():
    buddy = make_buddy()
    pfn = buddy.alloc(0, MigrateType.UNMOVABLE)  # steals block 0
    buddy.free(pfn)
    # Freed into the (now UNMOVABLE) block's list.
    assert len(buddy.free_lists[MAX_ORDER][MigrateType.UNMOVABLE]) == 1
    buddy.check_consistency()


def test_take_free_block_and_split():
    buddy = make_buddy()
    head = buddy.free_lists[MAX_ORDER][MigrateType.MOVABLE].peek_lowest()
    got = buddy.take_free_split(head, 3)
    assert got == head
    assert buddy.mem.free_order[head] == -1
    # 2**MAX_ORDER - 2**3 frames returned to lists from this block.
    assert buddy.nr_free == buddy.nr_frames - 8
    buddy.check_consistency()


def test_take_free_reserves_without_marking():
    buddy = make_buddy()
    pfn = buddy.take_free(2, MigrateType.MOVABLE)
    assert pfn is not None
    assert not buddy.mem.is_allocated(pfn)
    assert buddy.nr_free == buddy.nr_frames - 4


def test_move_freepages_block_retags():
    buddy = make_buddy()
    moved = buddy.move_freepages_block(1, MigrateType.UNMOVABLE)
    assert moved == PAGEBLOCK_FRAMES
    assert buddy.pageblocks.get_block(1) is MigrateType.UNMOVABLE
    pfn = buddy.alloc(0, MigrateType.UNMOVABLE)
    assert buddy.mem.pageblock_of(pfn) == 1
    buddy.check_consistency()


def test_adopt_and_release_block():
    mem = PhysicalMemory(MiB(8))
    table = PageblockTable(mem)
    left = BuddyAllocator(mem, table, VmStat(), 0, 2, label="L")
    right = BuddyAllocator(mem, table, VmStat(), 2, 4, label="R")
    left.seed_free()
    right.seed_free()
    right.release_block(2)
    left.adopt_block(2, MigrateType.MOVABLE)
    assert left.nr_blocks == 3
    assert right.nr_blocks == 1
    assert left.nr_free == 3 * PAGEBLOCK_FRAMES
    assert right.nr_free == PAGEBLOCK_FRAMES
    left.check_consistency()
    right.check_consistency()


def test_merge_does_not_cross_allocator_boundary():
    mem = PhysicalMemory(MiB(8))
    table = PageblockTable(mem)
    left = BuddyAllocator(mem, table, VmStat(), 0, 2, label="L")
    right = BuddyAllocator(mem, table, VmStat(), 2, 4, label="R")
    left.seed_free()
    right.seed_free()
    pfn = left.alloc(0, MigrateType.MOVABLE)
    left.free(pfn)
    # All blocks intact, none migrated across the boundary.
    assert left.nr_free == 2 * PAGEBLOCK_FRAMES
    assert right.nr_free == 2 * PAGEBLOCK_FRAMES


def test_free_frames_by_type_accounting():
    buddy = make_buddy()
    buddy.alloc(0, MigrateType.UNMOVABLE)  # steal one block
    by_type = buddy.free_frames_by_type()
    assert sum(by_type.values()) == buddy.nr_free
    assert by_type[MigrateType.UNMOVABLE] == PAGEBLOCK_FRAMES - 1


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_random_churn_preserves_invariants(seed):
    """Property: arbitrary alloc/free sequences keep bookkeeping exact."""
    rng = random.Random(seed)
    buddy = make_buddy(mem_mib=4)
    live = []
    for _ in range(300):
        if live and rng.random() < 0.5:
            pfn = live.pop(rng.randrange(len(live)))
            buddy.free(pfn)
        else:
            order = rng.choice([0, 0, 0, 1, 2, 3, 9])
            mt = rng.choice(list(MigrateType))
            pfn = buddy.alloc(order, mt)
            if pfn is not None:
                live.append(pfn)
    buddy.check_consistency()
    allocated = sum(1 << int(buddy.mem.alloc_order[p]) for p in live)
    assert buddy.nr_free == buddy.nr_frames - allocated


# ---------------------------------------------------------------------------
# Bulk APIs: alloc_bulk / free_bulk vs the scalar paths
# ---------------------------------------------------------------------------


def test_alloc_bulk_matches_scalar_sequence():
    """LIFO fast path: alloc_bulk pops the exact PFN sequence the scalar
    order-0 loop would have."""
    a = make_buddy(mem_mib=4)
    b = make_buddy(mem_mib=4)
    bulk = a.alloc_bulk(300, MigrateType.MOVABLE).tolist()
    scalar = [b.alloc(0, MigrateType.MOVABLE) for _ in range(300)]
    assert bulk == scalar
    a.check_consistency()


def test_alloc_bulk_empty_and_overask():
    buddy = make_buddy(mem_mib=4)
    assert buddy.alloc_bulk(0, MigrateType.MOVABLE).size == 0
    got = buddy.alloc_bulk(buddy.nr_frames + 5, MigrateType.MOVABLE)
    # Fast-path-only contract: never more than asked, never more than free.
    assert got.size <= buddy.nr_frames
    buddy.check_consistency()


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_free_bulk_bit_identical_to_scalar_frees(seed):
    """Property: free_bulk reaches the same normal form as freeing the
    same frames one at a time, whatever the batch's shape."""
    import numpy as np

    rng = random.Random(seed)
    a = make_buddy(mem_mib=4)
    b = make_buddy(mem_mib=4)
    live_a, live_b = [], []
    for _ in range(40):
        n = rng.randrange(1, 64)
        live_a.extend(a.alloc_bulk(n, MigrateType.MOVABLE).tolist())
        live_b.extend(b.alloc_bulk(n, MigrateType.MOVABLE).tolist())
    assert live_a == live_b
    idx = list(range(len(live_a)))
    rng.shuffle(idx)
    batch = [live_a[i] for i in idx[: len(idx) // 2]]
    a.free_bulk(batch)
    for pfn in batch:
        b.free(pfn)
    assert np.array_equal(a.mem.free_order, b.mem.free_order)
    assert np.array_equal(a.mem.free_mt, b.mem.free_mt)
    assert a.nr_free == b.nr_free
    a.check_consistency()
    b.check_consistency()


def test_free_bulk_rejects_duplicates():
    from repro.errors import ConfigurationError

    buddy = make_buddy(mem_mib=4)
    pfns = buddy.alloc_bulk(8, MigrateType.MOVABLE).tolist()
    with pytest.raises(ConfigurationError):
        buddy.free_bulk([pfns[0], pfns[0]])


def test_free_bulk_whole_batch_restores_everything():
    buddy = make_buddy(mem_mib=4)
    pfns = buddy.alloc_bulk(512, MigrateType.MOVABLE)
    buddy.free_bulk(pfns)
    assert buddy.nr_free == buddy.nr_frames
    buddy.check_consistency()
