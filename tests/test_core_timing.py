"""Timing core and the simulated request loop."""

import pytest

from repro.core.hwext import AccessMode
from repro.errors import ConfigurationError
from repro.sim import DEFAULT_PARAMS
from repro.sim.core import TimingCore
from repro.sim.tlb import SHIFT_2M, SHIFT_4K
from repro.workloads import MEMCACHED, NGINX
from repro.workloads.requestloop import (
    RequestLoop,
    relative_throughput_simulated,
)


class TestTimingCore:
    def test_compute_only_cpi_is_issue_bound(self):
        core = TimingCore()
        for _ in range(1000):
            core.execute()
        assert core.stats.cpi == pytest.approx(
            1.0 / DEFAULT_PARAMS.issue_width)

    def test_memory_ops_cost_more(self):
        core = TimingCore()
        core.execute(0x1000, SHIFT_4K)
        with_mem = core.stats.cpi
        assert with_mem > 1.0 / DEFAULT_PARAMS.issue_width

    def test_locality_lowers_cpi(self):
        hot = TimingCore()
        cold = TimingCore()
        for i in range(2000):
            hot.execute(0x1000, SHIFT_4K)          # same line every time
            cold.execute(i * 4096 * 7, SHIFT_4K)   # new page every time
        assert hot.stats.cpi < cold.stats.cpi

    def test_huge_mapping_cuts_translation(self):
        small = TimingCore()
        big = TimingCore()
        for i in range(3000):
            addr = (i * 977) % (1 << 30)
            small.execute(addr, SHIFT_4K)
            big.execute(addr, SHIFT_2M)
        assert big.stats.translation_cycles < small.stats.translation_cycles

    def test_overlap_bounds(self):
        with pytest.raises(ConfigurationError):
            TimingCore(overlap=1.0)
        with pytest.raises(ConfigurationError):
            TimingCore(overlap=-0.1)

    def test_run_trace_mem_ratio(self):
        core = TimingCore()
        stats = core.run_trace([0x1000] * 100, mem_ratio=0.5)
        assert stats.instructions == 200  # one filler per memory op
        with pytest.raises(ConfigurationError):
            TimingCore().run_trace([1], mem_ratio=0.0)

    def test_walk_share_between_zero_and_one(self):
        core = TimingCore()
        core.run_trace([i * 4096 * 13 for i in range(500)])
        assert 0.0 < core.stats.walk_share < 1.0


class TestRequestLoop:
    def test_quiet_run_counts_requests(self):
        result = RequestLoop(NGINX).run(200)
        assert result.requests == 200
        assert result.cycles > 0
        assert result.migrations_seen == 0

    def test_migrations_observed_at_high_rate(self):
        loop = RequestLoop(NGINX)
        result = loop.run(500, migrations_per_second=2e6)
        assert result.migrations_seen > 0

    def test_simulated_overhead_small_and_ordered(self):
        """§5.3's conclusion, reproduced at instruction level: sub-percent
        overhead even at Very High rate, memcached > nginx, cacheable
        cheaper than noncacheable."""
        nginx = relative_throughput_simulated(NGINX, 1000.0, requests=800)
        mc = relative_throughput_simulated(MEMCACHED, 1000.0, requests=800)
        mc_c = relative_throughput_simulated(
            MEMCACHED, 1000.0, mode=AccessMode.CACHEABLE, requests=800)
        for rel in (nginx, mc, mc_c):
            assert 0.99 < rel <= 1.0
        assert mc <= nginx
        assert mc_c >= mc

    def test_zero_rate_is_exactly_one(self):
        assert relative_throughput_simulated(NGINX, 0.0, requests=50) == 1.0

    def test_deterministic(self):
        a = relative_throughput_simulated(NGINX, 500.0, requests=300, seed=4)
        b = relative_throughput_simulated(NGINX, 500.0, requests=300, seed=4)
        assert a == b
