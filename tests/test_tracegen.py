"""Open-loop trace-driven load generation (§5.3 tail latency).

Covers the tentpole contracts:

* trace shapes validate eagerly and live in a kebab-case registry;
* arrival/service sampling is a pure function of (shape, rate, seed);
* percentile extraction is exact (nearest-rank over raw samples) and
  the log2-histogram batch path agrees with the scalar path;
* ``RequestLoop`` seeding is construction-order independent and arming
  migrations never perturbs the page-access stream;
* ``run_loadgen`` is bit-identical run to run, and the noncacheable
  design degrades p99 the way §5.3 reports.
"""

import dataclasses
import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ResultCache, run_experiment
from repro.telemetry.metrics import HIST_BUCKETS, Histogram
from repro.workloads.interference import MEMCACHED, NGINX
from repro.workloads.requestloop import RequestLoop
from repro.workloads.tracegen import (
    AZURE_FAAS,
    DIURNAL_WEB,
    LatencyRecorder,
    LoadgenConfig,
    STEADY,
    TraceShape,
    get_shape,
    list_shapes,
    register_shape,
    run_loadgen,
    sample_arrivals,
    sample_service,
)
from repro.core.hwext.metadata import AccessMode


class TestTraceShape:
    def test_builtin_shapes_registered(self):
        assert {"steady", "diurnal-web", "azure-faas",
                "spiky-cache"} <= set(list_shapes())
        assert get_shape("azure-faas") is AZURE_FAAS

    def test_list_shapes_sorted(self):
        assert list_shapes() == sorted(list_shapes())

    def test_unknown_shape_lists_known(self):
        with pytest.raises(ConfigurationError, match="steady"):
            get_shape("no-such-shape")

    def test_register_rejects_duplicates_unless_replace(self):
        shape = TraceShape(name="test-dup")
        register_shape(shape)
        with pytest.raises(ConfigurationError, match="test-dup"):
            register_shape(TraceShape(name="test-dup"))
        register_shape(TraceShape(name="test-dup"), replace=True)

    def test_name_must_be_kebab(self):
        for bad in ("", "CamelCase", "has_underscore", "-leading", "a--b"):
            with pytest.raises(ConfigurationError):
                TraceShape(name=bad)

    def test_validation_is_eager(self):
        with pytest.raises(ConfigurationError):
            TraceShape(name="x", interarrival="weibull")
        with pytest.raises(ConfigurationError):
            TraceShape(name="x", interarrival_cv=0.0)
        with pytest.raises(ConfigurationError):
            TraceShape(name="x", service="pareto", service_alpha=1.0)
        with pytest.raises(ConfigurationError):
            TraceShape(name="x", diurnal_amplitude=1.0)
        with pytest.raises(ConfigurationError):
            TraceShape(name="x", service_mean_instructions=8)
        with pytest.raises(ConfigurationError):
            TraceShape(name="x", service_cap_instructions=100,
                       service_mean_instructions=200)

    def test_shapes_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            STEADY.name = "other"


class TestSampling:
    def test_arrivals_deterministic_per_seed(self):
        a1, s1 = sample_arrivals(AZURE_FAAS, 1e6, 1e-3, seed=7)
        a2, s2 = sample_arrivals(AZURE_FAAS, 1e6, 1e-3, seed=7)
        assert a1 == a2 and s1 == s2
        a3, _ = sample_arrivals(AZURE_FAAS, 1e6, 1e-3, seed=8)
        assert a1 != a3

    def test_arrivals_monotone_in_span(self):
        arrivals, _ = sample_arrivals(DIURNAL_WEB, 5e5, 1e-3, seed=1)
        assert arrivals == sorted(arrivals)
        assert all(0.0 < t < 1e-3 for t in arrivals)

    def test_arrival_count_tracks_rate(self):
        low, _ = sample_arrivals(STEADY, 2e5, 1e-3, seed=3)
        high, _ = sample_arrivals(STEADY, 2e6, 1e-3, seed=3)
        assert 5 * len(low) < len(high)

    def test_spiky_shape_actually_spikes(self):
        _, spikes = sample_arrivals(AZURE_FAAS, 1e6, 5e-3, seed=2)
        assert spikes > 0
        _, none = sample_arrivals(STEADY, 1e6, 5e-3, seed=2)
        assert none == 0

    def test_service_bounds_and_determinism(self):
        draws = sample_service(AZURE_FAAS, 500, seed=4)
        assert draws == sample_service(AZURE_FAAS, 500, seed=4)
        cap = AZURE_FAAS.service_cap_instructions
        assert all(16 <= d <= cap for d in draws)
        # Pareto 1.9 service: the cap must actually bind sometimes at
        # this sample size, or the tail went missing.
        assert max(draws) > AZURE_FAAS.service_mean_instructions * 4

    def test_service_mean_near_configured_mean(self):
        draws = sample_service(STEADY, 4000, seed=5)
        mean = sum(draws) / len(draws)
        assert 0.8 * STEADY.service_mean_instructions < mean \
            < 1.2 * STEADY.service_mean_instructions


class TestLatencyRecorder:
    def test_exact_nearest_rank_percentiles(self):
        rec = LatencyRecorder()
        for v in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100):
            rec.observe(v)
        # Nearest-rank: p50 of 10 samples -> rank ceil(5) = 5th -> 50.
        assert rec.percentile(50.0) == 50.0
        assert rec.percentile(90.0) == 90.0
        assert rec.percentile(99.0) == 100.0
        assert rec.percentile(100.0) == 100.0
        assert rec.percentile(0.0) == 10.0
        assert rec.percentiles((50.0, 99.0)) == [50.0, 100.0]

    def test_exact_boundary_between_ranks(self):
        rec = LatencyRecorder()
        for v in (1, 2, 3, 4):
            rec.observe(v)
        # q exactly on a rank boundary picks that rank, not the next.
        assert rec.percentile(25.0) == 1.0
        assert rec.percentile(50.0) == 2.0
        assert rec.percentile(75.0) == 3.0
        # Just past the boundary moves up.
        assert rec.percentile(50.1) == 3.0

    def test_empty_recorder(self):
        rec = LatencyRecorder()
        assert rec.percentile(99.0) == 0.0
        assert rec.percentiles() == [0.0, 0.0, 0.0]
        assert rec.mean == 0.0
        summary = rec.summary(2.0)
        assert summary["requests"] == 0
        assert summary["p999_us"] == 0.0

    def test_p999_on_small_samples_is_max(self):
        rec = LatencyRecorder()
        for v in (5, 7, 9):
            rec.observe(v)
        # ceil(0.999 * 3) = 3 -> the maximum, never out of range.
        assert rec.percentile(99.9) == 9.0

    def test_out_of_range_q_rejected(self):
        rec = LatencyRecorder()
        rec.observe(1)
        with pytest.raises(ConfigurationError):
            rec.percentile(101.0)
        with pytest.raises(ConfigurationError):
            rec.percentiles((50.0, -1.0))

    def test_summary_units(self):
        rec = LatencyRecorder()
        rec.observe(2000)  # 2000 cycles at 2 GHz = 1 µs
        summary = rec.summary(2.0)
        assert summary == {"requests": 1, "mean_us": 1.0, "p50_us": 1.0,
                           "p99_us": 1.0, "p999_us": 1.0, "max_us": 1.0}


class TestHistogramPercentiles:
    def test_batch_matches_scalar(self):
        rng = random.Random("hist-batch")
        for _ in range(50):
            h = Histogram()
            for _ in range(rng.randrange(1, 400)):
                h.observe(rng.randrange(0, 1 << 20))
            qs = tuple(sorted(rng.uniform(0, 100) for _ in range(5)))
            assert h.percentiles(qs) == [h.percentile(q) for q in qs]

    def test_batch_unsorted_qs(self):
        h = Histogram()
        for v in (1, 2, 4, 8, 1000):
            h.observe(v)
        qs = (99.0, 1.0, 50.0)
        assert h.percentiles(qs) == [h.percentile(q) for q in qs]

    def test_exact_bucket_boundaries(self):
        h = Histogram()
        h.observe(8)  # bucket [8, 16): upper edge 16
        assert h.percentile(50.0) == 16.0
        h.observe(7)  # bucket [4, 8): upper edge 8
        assert h.percentile(25.0) == 8.0

    def test_empty_histogram(self):
        h = Histogram()
        assert h.percentile(99.0) == 0.0
        assert h.percentiles() == [0.0, 0.0, 0.0]

    def test_overflow_bucket(self):
        h = Histogram()
        h.observe(float(1 << 70))
        assert h.percentile(50.0) == Histogram.bucket_bounds(
            HIST_BUCKETS - 1)[1]


class TestRequestLoopSeeding:
    def _serve_n(self, loop, n=40):
        return [loop.serve_request() for _ in range(n)]

    def test_equal_seed_loops_bit_identical(self):
        a = RequestLoop(NGINX, seed=9)
        b = RequestLoop(NGINX, seed=9)
        assert self._serve_n(a) == self._serve_n(b)

    def test_construction_order_independent(self):
        # Interleave construction and serving with an unrelated loop:
        # named per-purpose streams mean the bystander cannot perturb it.
        a = RequestLoop(NGINX, seed=9)
        times_a = self._serve_n(a)
        noise = RequestLoop(MEMCACHED, seed=9)
        self._serve_n(noise, 10)
        b = RequestLoop(NGINX, seed=9)
        assert self._serve_n(b) == times_a

    def test_migration_draws_do_not_perturb_page_stream(self):
        quiet = RequestLoop(NGINX, seed=3)
        base = self._serve_n(quiet)
        noisy = RequestLoop(NGINX, seed=3)
        schedule = noisy.make_schedule(migrations_per_second=1e9)
        with_mig = [noisy.serve_request(schedule=schedule)
                    for _ in range(40)]
        assert schedule.windows_seen > 0
        # Same page sequence underneath: removing the penalty cycles
        # from the noisy run must recover the quiet run exactly.
        assert all(m >= q for m, q in zip(with_mig, base))
        p = noisy.params
        penalty = (p.l3_latency - p.l1_latency) * (1.0 - noisy.core.overlap)
        for m, q in zip(with_mig, base):
            extra = m - q
            n_hits = extra / penalty
            assert abs(n_hits - round(n_hits)) < 1e-6

    def test_schedule_counts_missed_windows(self):
        loop = RequestLoop(NGINX, seed=0)
        schedule = loop.make_schedule(migrations_per_second=1e6)
        gap = schedule.cycles_between
        schedule.advance(gap * 5.5)
        assert schedule.windows_seen == 5
        assert schedule.next_start > gap * 5.5

    def test_cacheable_pays_first_touch_only(self):
        loop = RequestLoop(NGINX, seed=0)
        schedule = loop.make_schedule(migrations_per_second=1e6)
        schedule.advance(schedule.next_start)
        page = schedule.migrating_page
        now = schedule.window_end - 1.0
        assert schedule.pays_penalty(now, page, AccessMode.CACHEABLE)
        assert not schedule.pays_penalty(now, page, AccessMode.CACHEABLE)
        assert schedule.pays_penalty(now, page, AccessMode.NONCACHEABLE)
        assert not schedule.pays_penalty(schedule.window_end, page,
                                         AccessMode.NONCACHEABLE)


FAST = dict(rate_rps=500_000.0, duration_s=5e-4, buffer_pages=8)


class TestRunLoadgen:
    def test_bit_identical_across_runs(self):
        from repro.telemetry import TelemetryConfig

        cfg = LoadgenConfig(seed=6, telemetry=TelemetryConfig(), **FAST)
        a = run_loadgen(cfg)
        b = run_loadgen(cfg)
        assert a.rows() == b.rows()
        assert a.manifest["aggregates"] == b.manifest["aggregates"]

    def test_seed_changes_rows(self):
        a = run_loadgen(LoadgenConfig(seed=6, **FAST))
        b = run_loadgen(LoadgenConfig(seed=7, **FAST))
        assert a.rows() != b.rows()

    def test_open_loop_queueing_is_real(self):
        # Saturating rate: latency must blow past any single service
        # time, because requests queue behind the busy core.
        r = run_loadgen(LoadgenConfig(shape="steady", rate_rps=1e7,
                                      duration_s=2e-4, design="none",
                                      seed=1))
        assert r.requests > 100
        all_row = r.summary()["all"]
        assert all_row["p99_us"] > 10 * all_row["p50_us"] or \
            all_row["p99_us"] > 1.0

    def test_noncacheable_p99_ordering_matches_s53(self):
        p99 = {}
        for design in ("noncacheable", "cacheable", "none"):
            r = run_loadgen(LoadgenConfig(design=design, seed=0, **FAST))
            p99[design] = r.summary()["all"]["p99_us"]
        assert p99["noncacheable"] > p99["cacheable"] >= p99["none"]

    def test_migration_class_split(self):
        r = run_loadgen(LoadgenConfig(design="noncacheable", seed=2,
                                      **FAST))
        s = r.summary()
        assert s["all"]["requests"] == (s["migration"]["requests"]
                                        + s["quiet"]["requests"])
        assert s["migration"]["requests"] > 0
        assert r.windows_seen > 0

    def test_design_none_has_no_migration_class(self):
        r = run_loadgen(LoadgenConfig(design="none", seed=2, **FAST))
        s = r.summary()
        assert s["migration"]["requests"] == 0
        assert r.windows_seen == 0

    def test_manifest_kind_and_aggregates(self):
        from repro.telemetry import TelemetryConfig

        r = run_loadgen(LoadgenConfig(seed=1,
                                      telemetry=TelemetryConfig(), **FAST))
        assert r.manifest["kind"] == "loadgen"
        agg = r.manifest["aggregates"]
        assert "all.p99_us" in agg and "achieved_rps" in agg
        assert "loadgen.latency.all" in r.manifest["metrics"]["histograms"]

    def test_no_telemetry_no_manifest(self):
        r = run_loadgen(LoadgenConfig(seed=1, **FAST))
        assert r.manifest is None

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LoadgenConfig(rate_rps=0.0)
        with pytest.raises(ConfigurationError):
            LoadgenConfig(design="sometimes")
        with pytest.raises(ConfigurationError):
            LoadgenConfig(app="postgres")
        with pytest.raises(ConfigurationError):
            LoadgenConfig(buffer_pages=4)
        with pytest.raises(ConfigurationError):
            LoadgenConfig(shape="unregistered-shape")

    def test_max_requests_guard(self):
        with pytest.raises(ConfigurationError, match="max_requests"):
            run_loadgen(LoadgenConfig(rate_rps=1e9, duration_s=1e-2,
                                      max_requests=1000))


class TestWorkloadLoadgenIntegration:
    def test_workload_result_carries_latency(self):
        from repro.units import MiB
        from repro.workloads import WorkloadConfig, run_workload

        result = run_workload(WorkloadConfig(
            service="cache-b", mem_bytes=MiB(64), steps=20, seed=5,
            loadgen=LoadgenConfig(**FAST)))
        snap = result.snapshot()
        assert snap["latency"]["all"]["requests"] > 0
        # The burst inherits the workload seed when left at default.
        again = run_workload(WorkloadConfig(
            service="cache-b", mem_bytes=MiB(64), steps=20, seed=5,
            loadgen=LoadgenConfig(**FAST)))
        assert again.snapshot() == snap


class TestFleetTail:
    def _config(self, workers):
        from repro.fleet import FleetConfig, ServerConfig
        from repro.units import MiB

        server = ServerConfig(mem_bytes=MiB(64), min_uptime_steps=10,
                              max_uptime_steps=20,
                              loadgen=LoadgenConfig(**FAST))
        return FleetConfig(n_servers=3, server=server, base_seed=21,
                           workers=workers)

    def test_scans_carry_latency_and_tail_summary(self):
        from repro.fleet import run_fleet

        sample = run_fleet(self._config(workers=1))
        for scan in sample.scans:
            assert scan.latency["all"]["requests"] > 0
            assert scan.vmstat["loadgen.requests"] > 0
        tail = sample.tail_summary()
        assert tail["all"]["servers"] == 3
        assert tail["all"]["p99_us_max"] >= tail["all"]["p99_us_median"]

    def test_worker_count_invisible_in_snapshots(self):
        from repro.fleet import run_fleet

        a = run_fleet(self._config(workers=1)).snapshot()
        b = run_fleet(self._config(workers=3)).snapshot()
        assert a == b
        assert any(k.startswith("latency.") for k in a)

    def test_loadgen_free_snapshots_unchanged(self):
        from repro.fleet import FleetConfig, ServerConfig, run_fleet
        from repro.units import MiB

        server = ServerConfig(mem_bytes=MiB(64), min_uptime_steps=10,
                              max_uptime_steps=20)
        snap = run_fleet(FleetConfig(n_servers=2, server=server,
                                     base_seed=21, workers=1)).snapshot()
        assert not any(k.startswith("latency.") for k in snap)
        for scan in snap.get("scans", []):
            assert "latency" not in scan

    def test_server_scan_latency_round_trips(self):
        from repro.fleet import ServerScan, SimulatedServer
        from repro.fleet.server import ServerConfig
        from repro.units import MiB

        scan = SimulatedServer(ServerConfig(
            mem_bytes=MiB(64), min_uptime_steps=10, max_uptime_steps=20,
            loadgen=LoadgenConfig(**FAST)), seed=4).run()
        assert scan.latency
        rebuilt = ServerScan.from_snapshot(scan.snapshot())
        assert rebuilt == scan


class TestTailLatencyExperiment:
    OVERRIDES = {"duration_ms": 0.5, "rate_krps": 500}

    def test_rows_identical_across_worker_counts(self, tmp_path):
        a = run_experiment("tail-latency-interference",
                           overrides=self.OVERRIDES, workers=1,
                           cache=ResultCache(str(tmp_path / "a")))
        b = run_experiment("tail-latency-interference",
                           overrides=self.OVERRIDES, workers=3,
                           cache=ResultCache(str(tmp_path / "b")))
        assert not a.cached and not b.cached
        assert a.rows == b.rows
        assert a.key == b.key  # workers never enter the cache key

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fresh = run_experiment("tail-latency-interference",
                               overrides=self.OVERRIDES, cache=cache)
        hit = run_experiment("tail-latency-interference",
                             overrides=self.OVERRIDES, cache=cache)
        assert not fresh.cached and hit.cached
        assert hit.rows == fresh.rows
        assert "p99" in hit.report()

    def test_report_covers_all_classes(self, tmp_path):
        result = run_experiment("tail-latency-interference",
                                overrides=self.OVERRIDES,
                                cache=ResultCache(str(tmp_path)))
        text = result.report()
        for needle in ("all", "migration", "quiet", "p999"):
            assert needle in text
