"""Contiguitas-HW: metadata table, commands, migration engine."""

import pytest

from repro.core.hwext import (
    AccessMode,
    HwMigrationEngine,
    MetadataTable,
    MigrateFlag,
    MigrationEntry,
    WorkQueue,
    clear_descriptor,
    migrate_descriptor,
)
from repro.errors import HardwareProtocolError
from repro.units import LINES_PER_PAGE


class TestMetadataTable:
    def test_install_lookup_clear(self):
        t = MetadataTable()
        e = MigrationEntry(src_ppn=5, dst_ppn=9)
        t.install(e)
        assert t.lookup(5) is e
        assert 5 in t
        got = t.clear(5)
        assert got is e
        assert t.lookup(5) is None

    def test_duplicate_install_rejected(self):
        t = MetadataTable()
        t.install(MigrationEntry(1, 2))
        with pytest.raises(HardwareProtocolError):
            t.install(MigrationEntry(1, 3))

    def test_capacity_enforced(self):
        t = MetadataTable(capacity=2)
        t.install(MigrationEntry(1, 10))
        t.install(MigrationEntry(2, 20))
        assert t.full
        with pytest.raises(HardwareProtocolError):
            t.install(MigrationEntry(3, 30))

    def test_clear_unknown_rejected(self):
        with pytest.raises(HardwareProtocolError):
            MetadataTable().clear(7)

    def test_peak_occupancy_tracked(self):
        t = MetadataTable()
        t.install(MigrationEntry(1, 10))
        t.install(MigrationEntry(2, 20))
        t.clear(1)
        assert t.peak_occupancy == 2

    def test_redirect_follows_ptr(self):
        e = MigrationEntry(src_ppn=5, dst_ppn=9, ptr=10)
        assert e.redirect(3) == 9    # already copied -> destination
        assert e.redirect(10) == 5   # not yet copied -> source
        assert e.redirect(63) == 5

    def test_redirect_bounds_checked(self):
        e = MigrationEntry(1, 2)
        with pytest.raises(HardwareProtocolError):
            e.redirect(64)


class TestWorkQueue:
    def test_fifo_order(self):
        q = WorkQueue()
        a = migrate_descriptor(1, 2)
        b = clear_descriptor(1)
        q.enqcmd(a)
        q.enqcmd(b)
        assert q.pop() is a
        assert q.pop() is b
        assert q.pop() is None

    def test_depth_limit(self):
        q = WorkQueue(depth=1)
        q.enqcmd(migrate_descriptor(1, 2))
        with pytest.raises(HardwareProtocolError):
            q.enqcmd(migrate_descriptor(3, 4))


class TestEngineNoncacheable:
    def test_full_migration_copies_all_lines(self):
        eng = HwMigrationEngine()
        report = eng.migrate_page(100, 200)
        assert report.lines_copied == LINES_PER_PAGE
        assert report.unavailable_cycles == eng.params.invlpg_cycles
        assert eng.table.lookup(100) is None  # cleared

    def test_redirection_during_copy(self):
        eng = HwMigrationEngine()
        eng.submit_migrate(100, 200)
        eng.copy_lines(100, max_lines=8)
        # Lines 0-7 migrated: served from dst; line 8+ from src.
        assert eng.access(100, 0) == 200
        assert eng.access(100, 8) == 100
        assert eng.stats.redirected_accesses == 1

    def test_access_to_unrelated_page_untouched(self):
        eng = HwMigrationEngine()
        eng.submit_migrate(100, 200)
        assert eng.access(555, 3) == 555

    def test_clear_before_done_rejected(self):
        eng = HwMigrationEngine()
        eng.submit_migrate(100, 200)
        eng.copy_lines(100, max_lines=8)
        with pytest.raises(HardwareProtocolError):
            eng.submit_clear(100)

    def test_migration_descriptor_completion(self):
        eng = HwMigrationEngine()
        desc = eng.submit_migrate(100, 200)
        assert desc.completed

    def test_cross_slice_writes_happen(self):
        eng = HwMigrationEngine()
        report = eng.migrate_page(100, 200)
        # The slice hash spreads lines: some copies must cross slices.
        assert report.cross_slice_writes > 0
        assert report.copy_cycles > 0

    def test_copy_cost_reasonable(self):
        """The HW copy should take on the order of microseconds at 2 GHz
        (§5.3 quotes ~2 µs per 4 KiB page)."""
        eng = HwMigrationEngine()
        report = eng.migrate_page(100, 200)
        us = eng.params.cycles_to_us(report.copy_cycles)
        assert 0.5 <= us <= 5.0

    def test_concurrent_migrations(self):
        eng = HwMigrationEngine()
        eng.submit_migrate(1, 11)
        eng.submit_migrate(2, 22)
        eng.copy_lines(1, 8)
        eng.copy_lines(2, 16)
        assert eng.access(1, 0) == 11
        assert eng.access(2, 15) == 22
        assert eng.access(2, 16) == 2


class TestEngineCacheable:
    def test_copy_deferred_until_start(self):
        eng = HwMigrationEngine(mode=AccessMode.CACHEABLE)
        eng.submit_migrate(100, 200)
        with pytest.raises(HardwareProtocolError):
            eng.copy_lines(100)
        eng.start_copy(100)
        assert eng.copy_lines(100) > 0

    def test_single_mapping_invariant(self):
        """At most one mapping caches a line privately; the opposite
        mapping's access invalidates it (§3.3 cacheable design)."""
        eng = HwMigrationEngine(mode=AccessMode.CACHEABLE)
        eng.submit_migrate(100, 200)
        eng.access(100, 5, mapping="src")
        assert eng.private_mapping_of(100, 5) == "src"
        eng.access(100, 5, mapping="dst")
        assert eng.private_mapping_of(100, 5) == "dst"
        assert eng.stats.nacks == 1

    def test_dirty_destination_lines_skipped(self):
        eng = HwMigrationEngine(mode=AccessMode.CACHEABLE)
        eng.submit_migrate(100, 200)
        eng.access(100, 3, mapping="dst", write=True)
        eng.access(100, 7, mapping="dst", write=True)
        eng.start_copy(100)
        eng.copy_lines(100)
        entry = eng.table.lookup(100)
        assert entry.done
        # Copy advanced past the dirty lines without copying them.
        assert eng.stats.lines_copied == LINES_PER_PAGE - 2

    def test_full_cacheable_migration_report(self):
        eng = HwMigrationEngine(mode=AccessMode.CACHEABLE)
        report = eng.migrate_page(100, 200)
        assert report.mode is AccessMode.CACHEABLE
        assert report.lines_copied == LINES_PER_PAGE
        assert report.unavailable_cycles == eng.params.invlpg_cycles


class TestEngineErrors:
    def test_copy_without_migration(self):
        eng = HwMigrationEngine()
        with pytest.raises(HardwareProtocolError):
            eng.copy_lines(42)

    def test_start_copy_without_migration(self):
        eng = HwMigrationEngine(mode=AccessMode.CACHEABLE)
        with pytest.raises(HardwareProtocolError):
            eng.start_copy(42)
