"""Timeline recorder and the command-line interface."""

import pytest

from repro.analysis import TimelineRecorder, watch_kernel
from repro.cli import build_parser, main
from repro.errors import ConfigurationError

from conftest import make_contiguitas


class TestTimelineRecorder:
    def test_sample_and_series(self):
        counter = {"v": 0}

        def metric():
            counter["v"] += 1
            return counter["v"]

        rec = TimelineRecorder(metrics={"m": metric})
        rec.sample(0)
        rec.sample(10)
        assert rec.series("m") == [1.0, 2.0]
        assert rec.steps() == [0, 10]
        assert rec.final("m") == 2.0

    def test_unknown_metric_rejected(self):
        rec = TimelineRecorder(metrics={"m": lambda: 1})
        with pytest.raises(ConfigurationError):
            rec.series("nope")

    def test_empty_metrics_rejected(self):
        with pytest.raises(ConfigurationError):
            TimelineRecorder(metrics={})

    def test_final_requires_samples(self):
        rec = TimelineRecorder(metrics={"m": lambda: 1})
        with pytest.raises(ConfigurationError):
            rec.final("m")

    def test_csv_export(self):
        rec = TimelineRecorder(metrics={"a": lambda: 1, "b": lambda: 2.5})
        rec.sample(0)
        csv = rec.to_csv()
        assert csv.splitlines() == ["step,a,b", "0,1,2.5"]

    def test_watch_kernel_includes_region_metric(self):
        k = make_contiguitas(mem_mib=16)
        rec = watch_kernel(k)
        values = rec.sample(0)
        assert "unmovable_region_blocks" in values
        assert values["free_frames"] == k.free_frames()


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        # argparse stores subparser choices on the last action.
        sub = parser._subparsers._group_actions[0]
        assert set(sub.choices) == {"fig13", "walk", "steady", "fleet",
                                    "hwcost", "interference", "autotune",
                                    "chaos", "trace", "metrics", "lint",
                                    "experiment", "loadgen", "checkpoint",
                                    "scenario"}

    def test_shared_options_spelled_identically(self):
        """The consolidated verbs take --seed/--workers/--json/--manifest
        from one parent parser: same defaults, same validation."""
        parser = build_parser()
        args = parser.parse_args(["fleet", "--seed", "3", "--workers", "2"])
        assert (args.seed, args.workers) == (3, 2)
        args = parser.parse_args(["chaos", "--seed", "3", "--workers", "2"])
        assert (args.seed, args.workers) == (3, 2)
        args = parser.parse_args(["experiment", "run", "fleet-survey",
                                  "--workers", "2", "--json"])
        assert args.seed is None and args.workers == 2 and args.json
        args = parser.parse_args(["metrics", "--json", "a.json"])
        assert args.json

    def test_workers_validated_identically(self, capsys):
        parser = build_parser()
        for argv in (["fleet", "--workers", "0"],
                     ["chaos", "--workers", "-2"],
                     ["experiment", "run", "x", "--workers", "zero"]):
            with pytest.raises(SystemExit):
                parser.parse_args(argv)
            assert "process count" in capsys.readouterr().err

    def test_interference_runs(self, capsys):
        main(["interference", "--rate", "500"])
        out = capsys.readouterr().out
        assert "noncacheable" in out

    def test_fig13_runs(self, capsys):
        main(["fig13"])
        out = capsys.readouterr().out
        assert "Contiguitas" in out
        assert "Victim TLBs" in out

    def test_hwcost_runs(self, capsys):
        main(["hwcost"])
        out = capsys.readouterr().out
        assert "mm^2" in out

    def test_walk_runs(self, capsys):
        main(["walk", "--service", "CacheB", "--instructions", "20000"])
        out = capsys.readouterr().out
        assert "Data walk" in out

    def test_steady_runs(self, capsys):
        main(["steady", "--service", "CacheB", "--mem-mib", "64",
              "--steps", "50"])
        out = capsys.readouterr().out
        assert "unmovable region" in out
        assert "confinement violations" in out

    def test_loadgen_runs(self, capsys):
        main(["loadgen", "--trace-shape", "steady", "--rate", "500000",
              "--duration", "0.0005", "--seed", "9"])
        out = capsys.readouterr().out
        assert "open-loop tail latency" in out
        assert "migration" in out and "quiet" in out
        assert "migration windows" in out

    def test_loadgen_json_deterministic(self, capsys):
        argv = ["loadgen", "--json", "--trace-shape", "spiky-cache",
                "--rate", "500000", "--duration", "0.0005", "--seed", "9"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first
        import json

        doc = json.loads(first)
        assert doc["requests"] > 0
        assert {row["class"] for row in doc["rows"]} == {
            "all", "migration", "quiet"}
