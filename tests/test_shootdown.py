"""Migration protocols: Linux IPI shootdown vs Contiguitas-HW (Fig. 13)."""

import pytest

from repro.mm import MigrationCostModel
from repro.sim import (
    DEFAULT_PARAMS,
    page_copy_cycles,
    simulate_contiguitas_migration,
    simulate_linux_migration,
)


def test_copy_cost_near_paper_value():
    """The paper measures ~1300 cycles for the 4 KiB page copy."""
    copy = page_copy_cycles(DEFAULT_PARAMS)
    assert 1100 <= copy <= 1500


def test_linux_unavailability_grows_linearly():
    times = [simulate_linux_migration(DEFAULT_PARAMS, v).unavailable_cycles
             for v in range(1, 8)]
    deltas = [b - a for a, b in zip(times, times[1:])]
    assert all(d == deltas[0] for d in deltas), "not linear"
    assert deltas[0] > 500  # substantial per-victim cost


def test_linux_eight_victims_near_8k_cycles():
    """Fig. 13's right edge: ~8000 cycles of unavailability at 8 TLBs."""
    t = simulate_linux_migration(DEFAULT_PARAMS, 7)
    assert 7000 <= t.unavailable_cycles <= 9500


def test_linux_zero_victims_still_pays_copy():
    t = simulate_linux_migration(DEFAULT_PARAMS, 0)
    assert t.unavailable_cycles >= page_copy_cycles(DEFAULT_PARAMS)


def test_linux_acks_arrive_in_order():
    t = simulate_linux_migration(DEFAULT_PARAMS, 5)
    assert t.ack_times == sorted(t.ack_times)
    assert len(t.ack_times) == 5


def test_contiguitas_unavailability_constant():
    """Fig. 13's flat line: a local invalidation, regardless of cores."""
    times = [simulate_contiguitas_migration(DEFAULT_PARAMS, v)
             .unavailable_cycles for v in range(1, 8)]
    assert len(set(times)) == 1
    assert times[0] == DEFAULT_PARAMS.invlpg_cycles


def test_contiguitas_much_cheaper_than_linux():
    linux = simulate_linux_migration(DEFAULT_PARAMS, 7)
    cont = simulate_contiguitas_migration(DEFAULT_PARAMS, 7)
    assert cont.unavailable_cycles < linux.unavailable_cycles / 10


def test_contiguitas_total_time_near_2us():
    """§5.3: 'The cost of a 4KB page migration in Contiguitas-HW is close
    to 2us' (copy side; lazy invalidations overlap)."""
    t = simulate_contiguitas_migration(DEFAULT_PARAMS, 7)
    copy_us = DEFAULT_PARAMS.cycles_to_us(t.copy_done_at - t.start)
    assert 0.5 <= copy_us <= 3.0


def test_sim_matches_analytic_model_within_10pct():
    """The paper validates Linux-Sim against Linux-Real at -6%..+10%; we
    hold our event model to the same band against the analytic model."""
    analytic = MigrationCostModel()
    for victims in range(1, 8):
        sim = simulate_linux_migration(
            DEFAULT_PARAMS, victims).unavailable_cycles
        real = analytic.downtime_cycles(victims)
        assert abs(sim - real) / real < 0.10, (victims, sim, real)


def test_invalid_victim_count_rejected():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        simulate_linux_migration(DEFAULT_PARAMS, 8)  # 8 cores: max 7 remote
